package dram

import "testing"

func chanModule(t *testing.T) *Module {
	t.Helper()
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 2, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(nil, 0); err == nil {
		t.Fatal("expected error for empty channel")
	}
	a := chanModule(t)
	b, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 2, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR3Timing(), // different tCK
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChannel([]*Module{a, b}, 0); err == nil {
		t.Fatal("expected error for mismatched tCK")
	}
}

func TestChannelRanksIndependentState(t *testing.T) {
	r0, r1 := chanModule(t), chanModule(t)
	ch, err := NewChannel([]*Module{r0, r1}, PicosFromNs(7.5))
	if err != nil {
		t.Fatal(err)
	}
	tm := r0.Timing()
	now := Picos(0)
	// Open different rows in the same bank number of both ranks.
	if _, at, err := ch.Exec(0, Command{Op: OpAct, Bank: 0, Row: 5}, now); err != nil {
		t.Fatal(err)
	} else {
		now = at
	}
	if _, at, err := ch.Exec(1, Command{Op: OpAct, Bank: 0, Row: 9}, now+tm.TCK); err != nil {
		t.Fatal(err)
	} else {
		now = at
	}
	if r0.ActiveRow(0) != 5 || r1.ActiveRow(0) != 9 {
		t.Fatalf("rank bank states entangled: %d, %d", r0.ActiveRow(0), r1.ActiveRow(0))
	}
}

func TestChannelSerializesCommandBus(t *testing.T) {
	r0, r1 := chanModule(t), chanModule(t)
	ch, err := NewChannel([]*Module{r0, r1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two commands requested at the same instant: the second must be
	// pushed at least one tCK later.
	_, at0, err := ch.Exec(0, Command{Op: OpAct, Bank: 0, Row: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, at1, err := ch.Exec(1, Command{Op: OpAct, Bank: 1, Row: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if at1-at0 < r0.Timing().TCK {
		t.Fatalf("bus not serialized: %d then %d", at0, at1)
	}
}

func TestChannelRankSwitchTurnaround(t *testing.T) {
	r0, r1 := chanModule(t), chanModule(t)
	turn := PicosFromNs(7.5)
	ch, err := NewChannel([]*Module{r0, r1}, turn)
	if err != nil {
		t.Fatal(err)
	}
	tm := r0.Timing()
	now := Picos(0)
	for rank := 0; rank < 2; rank++ {
		if _, at, err := ch.Exec(rank, Command{Op: OpAct, Bank: 0, Row: 1}, now+tm.TRRD); err != nil {
			t.Fatal(err)
		} else {
			now = at
		}
	}
	// Read rank 0 then rank 1: the second read pays turnaround.
	_, atA, err := ch.Exec(0, Command{Op: OpRd, Bank: 0, Col: 0}, now+tm.TRCD)
	if err != nil {
		t.Fatal(err)
	}
	_, atB, err := ch.Exec(1, Command{Op: OpRd, Bank: 0, Col: 0}, atA+tm.TCK)
	if err != nil {
		t.Fatal(err)
	}
	if atB-atA < turn {
		t.Fatalf("rank switch without turnaround: Δ=%d", atB-atA)
	}
	st := ch.Stats()
	if st.RankSwitches == 0 || st.TurnaroundTime == 0 {
		t.Fatalf("turnaround not accounted: %+v", st)
	}
}

func TestChannelRankOutOfRange(t *testing.T) {
	ch, err := NewChannel([]*Module{chanModule(t)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ch.Exec(3, Command{Op: OpNop}, 0); err == nil {
		t.Fatal("expected rank range error")
	}
	if ch.Rank(0) == nil || ch.Rank(5) != nil {
		t.Fatal("Rank accessor broken")
	}
	if ch.Ranks() != 1 {
		t.Fatal("Ranks count wrong")
	}
}
