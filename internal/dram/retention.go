package dram

import (
	"math"

	"rowhammer/internal/rng"
)

// RetentionConfig enables data-retention failure modeling. The study
// keeps every test short enough that retention errors cannot pollute
// RowHammer measurements (§4.2); enabling this model lets experiments
// verify that property instead of assuming it.
//
// Each cell draws a retention time from a lognormal distribution with
// a weak-cell tail (the classic DRAM retention distribution): almost
// all cells retain far beyond the 64 ms refresh window, a tiny
// fraction fail shortly after it.
type RetentionConfig struct {
	// MedianSeconds is the bulk distribution's median retention time
	// (room temperature; seconds). Typical modern DRAM: >64 s.
	MedianSeconds float64
	// Sigma is the lognormal sigma of the bulk distribution.
	Sigma float64
	// WeakFrac is the fraction of cells in the weak tail.
	WeakFrac float64
	// WeakMedianSeconds is the weak tail's median retention time.
	WeakMedianSeconds float64
	// TempCoeffPerC halves... scales retention exponentially with
	// temperature: retention × exp(-TempCoeffPerC × (T - 45 °C)).
	// The literature reports roughly a 2× loss per 10 °C
	// (coefficient ≈ 0.069).
	TempCoeffPerC float64
}

// DefaultRetentionConfig returns a configuration matching published
// retention characterizations: virtually no failures within 64 ms,
// a weak tail starting near a few hundred ms.
func DefaultRetentionConfig() RetentionConfig {
	return RetentionConfig{
		MedianSeconds:     64,
		Sigma:             1.0,
		WeakFrac:          1e-5,
		WeakMedianSeconds: 0.5,
		TempCoeffPerC:     0.069,
	}
}

// retention models per-cell retention failures.
type retention struct {
	cfg  RetentionConfig
	seed uint64
}

// cellRetentionSeconds returns a cell's retention time at the
// reference temperature (45 °C).
func (r *retention) cellRetentionSeconds(bank, row, bit int) float64 {
	h := rng.Hash64(r.seed, 0x2e7e, uint64(bank), uint64(row), uint64(bit))
	median := r.cfg.MedianSeconds
	if rng.Uniform01(rng.Hash64(h, 1)) < r.cfg.WeakFrac {
		median = r.cfg.WeakMedianSeconds
	}
	z := rng.NormalFromHash(rng.Hash64(h, 2), rng.Hash64(h, 3))
	return median * math.Exp(r.cfg.Sigma*z)
}

// decayed reports whether a cell loses its charge after holding for
// the given duration at the given temperature.
func (r *retention) decayed(bank, row, bit int, held Picos, tempC float64) bool {
	if held <= 0 {
		return false
	}
	t := r.cellRetentionSeconds(bank, row, bit)
	t *= math.Exp(-r.cfg.TempCoeffPerC * (tempC - 45))
	return float64(held)/1e12 > t
}

// applyRetention injects retention failures into a row's data given
// how long the row has been unrefreshed. Only charged cells decay
// (true-cells storing 1, anti-cells storing 0); orientation reuses the
// cell's identity hash so the retention and RowHammer models agree on
// which state is charged.
func (m *Module) applyRetention(bank, phys int, data []uint64, held Picos) int {
	if m.ret == nil {
		return 0
	}
	flips := 0
	rowBits := m.geo.RowBits()
	for bit := 0; bit < rowBits; bit++ {
		word, off := bit/64, uint(bit%64)
		stored := data[word] >> off & 1
		charged := rng.Hash64(m.retOrientSeed, uint64(bank), uint64(phys), uint64(bit)) & 1
		if stored != charged {
			continue
		}
		if m.ret.decayed(bank, phys, bit, held, m.tempC) {
			data[word] ^= 1 << off
			flips++
		}
	}
	return flips
}
