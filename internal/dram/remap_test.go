package dram

import (
	"testing"
	"testing/quick"
)

func checkBijection(t *testing.T, s RemapScheme, rows int) {
	t.Helper()
	seen := make(map[int]bool, rows)
	for l := 0; l < rows; l++ {
		p := s.ToPhysical(l)
		if p < 0 || p >= rows {
			t.Fatalf("%s: ToPhysical(%d) = %d out of range", s.Name(), l, p)
		}
		if seen[p] {
			t.Fatalf("%s: physical %d hit twice", s.Name(), p)
		}
		seen[p] = true
		if back := s.ToLogical(p); back != l {
			t.Fatalf("%s: ToLogical(ToPhysical(%d)) = %d", s.Name(), l, back)
		}
	}
}

func TestRemapSchemesAreBijections(t *testing.T) {
	for _, s := range []RemapScheme{DirectRemap{}, MirrorRemap{}, DefaultScramble()} {
		checkBijection(t, s, 1024)
	}
}

func TestMirrorRemapKnownValues(t *testing.T) {
	m := MirrorRemap{}
	cases := map[int]int{0: 0, 7: 7, 8: 15, 15: 8, 9: 14, 16: 16, 24: 31}
	for l, p := range cases {
		if got := m.ToPhysical(l); got != p {
			t.Fatalf("mirror ToPhysical(%d) = %d, want %d", l, got, p)
		}
	}
}

func TestScrambleRemapKnownValues(t *testing.T) {
	s := DefaultScramble()
	cases := map[int]int{0: 0, 1: 1, 2: 3, 3: 2, 4: 5, 5: 4, 6: 6, 7: 7, 10: 11, 16: 16}
	for l, p := range cases {
		if got := s.ToPhysical(l); got != p {
			t.Fatalf("scramble ToPhysical(%d) = %d, want %d", l, got, p)
		}
	}
}

func TestNewScrambleRemapRejectsNonPermutation(t *testing.T) {
	if _, err := NewScrambleRemap([8]int{0, 0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Fatal("expected error for duplicate entry")
	}
	if _, err := NewScrambleRemap([8]int{0, 1, 2, 3, 4, 5, 6, 9}); err == nil {
		t.Fatal("expected error for out-of-range entry")
	}
}

func TestRemapRoundTripProperty(t *testing.T) {
	schemes := []RemapScheme{DirectRemap{}, MirrorRemap{}, DefaultScramble()}
	if err := quick.Check(func(raw uint16, which uint8) bool {
		s := schemes[int(which)%len(schemes)]
		l := int(raw)
		return s.ToLogical(s.ToPhysical(l)) == l
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
