package dram

import "rowhammer/internal/rng"

// PatternKind enumerates the seven data patterns of Table 1: colstripe,
// checkered, rowstripe, their complements, and random.
type PatternKind int

// The Table 1 data patterns.
const (
	PatColStripe PatternKind = iota
	PatColStripeInv
	PatCheckered
	PatCheckeredInv
	PatRowStripe
	PatRowStripeInv
	PatRandom
)

// AllPatterns lists every Table 1 pattern in a stable order.
var AllPatterns = []PatternKind{
	PatColStripe, PatColStripeInv,
	PatCheckered, PatCheckeredInv,
	PatRowStripe, PatRowStripeInv,
	PatRandom,
}

// String returns the paper's name for the pattern.
func (p PatternKind) String() string {
	switch p {
	case PatColStripe:
		return "colstripe"
	case PatColStripeInv:
		return "colstripe~"
	case PatCheckered:
		return "checkered"
	case PatCheckeredInv:
		return "checkered~"
	case PatRowStripe:
		return "rowstripe"
	case PatRowStripeInv:
		return "rowstripe~"
	case PatRandom:
		return "random"
	default:
		return "unknown"
	}
}

// RowByte returns the fill byte for a row at the given distance parity
// from the victim row, following Table 1: the victim and even-distance
// rows take the first column, odd-distance rows the second.
//
//	pattern      V±[0,2,4,6,8]  V±[1,3,5,7]
//	colstripe        0x55          0x55
//	checkered        0x55          0xaa
//	rowstripe        0x00          0xff
//
// For PatRandom the byte is drawn per (seed, row, word) elsewhere; this
// function returns 0 and callers must special-case it.
func (p PatternKind) RowByte(distanceFromVictim int) uint8 {
	odd := distanceFromVictim%2 != 0
	if distanceFromVictim < 0 {
		odd = (-distanceFromVictim)%2 != 0
	}
	switch p {
	case PatColStripe:
		return 0x55
	case PatColStripeInv:
		return 0xaa
	case PatCheckered:
		if odd {
			return 0xaa
		}
		return 0x55
	case PatCheckeredInv:
		if odd {
			return 0x55
		}
		return 0xaa
	case PatRowStripe:
		if odd {
			return 0xff
		}
		return 0x00
	case PatRowStripeInv:
		if odd {
			return 0x00
		}
		return 0xff
	default:
		return 0
	}
}

// FillWord returns the 64-bit fill word for word index w of a row at
// the given distance from the victim. Random patterns are a pure
// function of (seed, bank, row, word).
func (p PatternKind) FillWord(seed uint64, bank, row, distanceFromVictim, w int) uint64 {
	if p == PatRandom {
		return rng.Hash64(seed, uint64(bank), uint64(row), uint64(w), 0xda7a)
	}
	b := uint64(p.RowByte(distanceFromVictim))
	b |= b << 8
	b |= b << 16
	b |= b << 32
	return b
}
