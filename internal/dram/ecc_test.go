package dram

import (
	"testing"
	"testing/quick"

	"rowhammer/internal/rng"
)

func TestECCNoErrorRoundTrip(t *testing.T) {
	if err := quick.Check(func(data uint64) bool {
		chk := ECCEncode(data)
		got, res := ECCDecode(data, chk)
		return got == data && res == ECCNoError
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestECCCorrectsEverySingleBitError(t *testing.T) {
	for _, data := range []uint64{0, ^uint64(0), 0xdeadbeefcafef00d, 1} {
		chk := ECCEncode(data)
		for bit := 0; bit < 64; bit++ {
			corrupted := data ^ (1 << bit)
			got, res := ECCDecode(corrupted, chk)
			if res != ECCCorrected {
				t.Fatalf("data %#x bit %d: result %v, want corrected", data, bit, res)
			}
			if got != data {
				t.Fatalf("data %#x bit %d: corrected to %#x", data, bit, got)
			}
		}
	}
}

func TestECCDetectsDoubleBitErrors(t *testing.T) {
	s := rng.NewStream(21)
	for trial := 0; trial < 200; trial++ {
		data := s.Uint64()
		chk := ECCEncode(data)
		b1 := s.Intn(64)
		b2 := s.Intn(64)
		if b1 == b2 {
			continue
		}
		corrupted := data ^ (1 << b1) ^ (1 << b2)
		_, res := ECCDecode(corrupted, chk)
		if res != ECCDetectedUncorrectable {
			t.Fatalf("double error (%d,%d) on %#x: result %v", b1, b2, data, res)
		}
	}
}

func TestECCCheckBitErrorRecognized(t *testing.T) {
	data := uint64(0x0123456789abcdef)
	chk := ECCEncode(data)
	for bit := uint(0); bit < 8; bit++ {
		got, res := ECCDecode(data, chk^(1<<bit))
		if res != ECCCorrected {
			t.Fatalf("check-bit %d error: result %v", bit, res)
		}
		if got != data {
			t.Fatalf("check-bit %d error corrupted data to %#x", bit, got)
		}
	}
}

func TestECCDataPositionsAreValid(t *testing.T) {
	seen := map[int]bool{}
	for i, p := range eccDataPos {
		if p <= 0 || p > 72 {
			t.Fatalf("data bit %d at invalid position %d", i, p)
		}
		if p&(p-1) == 0 {
			t.Fatalf("data bit %d at parity position %d", i, p)
		}
		if seen[p] {
			t.Fatalf("duplicate position %d", p)
		}
		seen[p] = true
	}
}

func TestModuleOnDieECCMasksOneFlip(t *testing.T) {
	// A disturber that flips exactly one data bit in the victim row:
	// with on-die ECC the read must return clean data while the raw
	// stored data is corrupted.
	cd := &countingDisturber{minHammers: 1}
	m, err := NewModule(ModuleConfig{
		Geometry:  Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:    DDR4Timing(),
		Disturber: cd,
		OnDieECC:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &driver{m: m, t: t}
	want := uint64(0xffffffffffffffff)
	d.openWriteClose(0, 10, 0, want)
	tm := m.Timing()
	d.step(tm.TRC)
	d.must(Command{Op: OpAct, Bank: 0, Row: 9})
	d.step(tm.TRAS)
	d.must(Command{Op: OpPre, Bank: 0})
	if got := d.openReadClose(0, 10, 0); got != want {
		t.Fatalf("ECC read = %#x, want corrected %#x", got, want)
	}
	if m.Stats().ECCCorrected != 1 {
		t.Fatalf("ECCCorrected = %d, want 1", m.Stats().ECCCorrected)
	}
	if raw := m.PeekRow(0, 10); raw[0] == want {
		t.Fatal("stored data should remain corrupted (ECC corrects the read, not the array)")
	}
}
