package dram

import "fmt"

// ModuleConfig configures one simulated DRAM module.
type ModuleConfig struct {
	Geometry Geometry
	Timing   Timing
	// Remap is the internal row-address mapping; nil means DirectRemap.
	Remap RemapScheme
	// Disturber injects RowHammer flips; nil means NopDisturber.
	Disturber Disturber
	// TRR enables the in-DRAM Target Row Refresh sampler when non-nil.
	TRR *TRRConfig
	// OnDieECC enables the (72,64) SECDED code on reads/writes.
	OnDieECC bool
	// Retention enables data-retention failure modeling (off in the
	// study's methodology, which keeps tests short; §4.2).
	Retention *RetentionConfig
	// Seed feeds module-local randomness (retention draws and cell
	// orientation for retention decay).
	Seed uint64
	// InitialTempC is the module temperature before any controller
	// adjustment (the chamber idles at 50 °C in the study).
	InitialTempC float64
}

// Stats counts module activity and injected faults.
type Stats struct {
	Acts, Pres, Reads, Writes, Refs int64
	// FlipsInjected counts RowHammer bit flips applied to stored data.
	FlipsInjected int64
	// ECCCorrected counts read words the on-die ECC corrected.
	ECCCorrected int64
	// ECCUncorrectable counts read words flagged uncorrectable.
	ECCUncorrectable int64
	// TRRRefreshes counts rows the TRR mechanism refreshed.
	TRRRefreshes int64
	// RetentionFlips counts data-retention failures injected.
	RetentionFlips int64
	// RefreshWindowOverruns counts REF-to-REF (or start-to-first-REF)
	// gaps exceeding tREFW/8192 budgets; characterization deliberately
	// overruns, so this is informational.
	RefreshWindowOverruns int64
}

// Module simulates one DRAM rank (a module with chips in lock-step).
// It is not safe for concurrent use; each goroutine should own its own
// Module (experiments parallelize across modules).
type Module struct {
	cfg           ModuleConfig
	geo           Geometry
	timing        Timing
	remap         RemapScheme
	disturber     Disturber
	banks         []*bankState
	trr           []*trrSampler
	tempC         float64
	stats         Stats
	ret           *retention
	retOrientSeed uint64

	// global timing bookkeeping
	lastActAnyAt  Picos
	everActAny    bool
	refBlockUntil Picos
	lastRefAt     Picos
	everRef       bool
	refRowCursor  int
	rowsPerRef    int
	beatBits      int

	// hammerPhys is HammerBulk's reusable aggressor scratch (physical
	// row indexes), kept on the module so the hot hammer loop does not
	// allocate.
	hammerPhys []int
}

// NewModule builds a module from cfg.
func NewModule(cfg ModuleConfig) (*Module, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	beat := cfg.Geometry.Chips * cfg.Geometry.ChipWidth
	if beat > 64 {
		return nil, fmt.Errorf("dram: beat width %d bits exceeds 64 (unsupported)", beat)
	}
	m := &Module{
		cfg:       cfg,
		geo:       cfg.Geometry,
		timing:    cfg.Timing,
		remap:     cfg.Remap,
		disturber: cfg.Disturber,
		tempC:     cfg.InitialTempC,
		beatBits:  beat,
	}
	if m.remap == nil {
		m.remap = DirectRemap{}
	}
	if m.disturber == nil {
		m.disturber = NopDisturber{}
	}
	if m.tempC == 0 {
		m.tempC = 50
	}
	m.banks = make([]*bankState, m.geo.Banks)
	for i := range m.banks {
		m.banks[i] = newBankState()
	}
	if cfg.TRR != nil {
		m.trr = make([]*trrSampler, m.geo.Banks)
		for i := range m.trr {
			m.trr[i] = newTRRSampler(*cfg.TRR, i)
		}
	}
	if cfg.Retention != nil {
		m.ret = &retention{cfg: *cfg.Retention, seed: cfg.Seed}
		m.retOrientSeed = cfg.Seed
	}
	// JEDEC refreshes the array over 8192 REF commands per tREFW.
	m.rowsPerRef = (m.geo.RowsPerBank + 8191) / 8192
	return m, nil
}

// Geometry returns the module geometry.
func (m *Module) Geometry() Geometry { return m.geo }

// Timing returns the module timing set.
func (m *Module) Timing() Timing { return m.timing }

// Remap returns the internal row remapping scheme.
func (m *Module) Remap() RemapScheme { return m.remap }

// Stats returns a snapshot of activity counters.
func (m *Module) Stats() Stats { return m.stats }

// SetTemperature updates the module temperature (driven by the thermal
// controller). Takes effect for subsequent activations.
func (m *Module) SetTemperature(c float64) { m.tempC = c }

// Temperature returns the current module temperature in Celsius.
func (m *Module) Temperature() float64 { return m.tempC }

// Exec applies one command at absolute time now, enforcing protocol and
// timing rules. For RD it returns the data beat read.
func (m *Module) Exec(cmd Command, now Picos) (uint64, error) {
	switch cmd.Op {
	case OpNop:
		return 0, nil
	case OpAct:
		return 0, m.execAct(cmd, now)
	case OpPre:
		return 0, m.execPre(cmd, now)
	case OpPreAll:
		for b := 0; b < m.geo.Banks; b++ {
			c := cmd
			c.Bank = b
			c.Op = OpPre
			if err := m.execPre(c, now); err != nil {
				return 0, err
			}
		}
		return 0, nil
	case OpRd:
		return m.execRd(cmd, now)
	case OpWr:
		return 0, m.execWr(cmd, now)
	case OpRef:
		return 0, m.execRef(cmd, now)
	default:
		return 0, &ProtocolError{Msg: "unknown opcode", Cmd: cmd, At: now}
	}
}

func (m *Module) bank(cmd Command, now Picos) (*bankState, error) {
	if cmd.Bank < 0 || cmd.Bank >= m.geo.Banks {
		return nil, &ProtocolError{Msg: "bank out of range", Cmd: cmd, At: now}
	}
	return m.banks[cmd.Bank], nil
}

func (m *Module) execAct(cmd Command, now Picos) error {
	b, err := m.bank(cmd, now)
	if err != nil {
		return err
	}
	if cmd.Row < 0 || cmd.Row >= m.geo.RowsPerBank {
		return &ProtocolError{Msg: "row out of range", Cmd: cmd, At: now}
	}
	if b.activeRow >= 0 {
		return &ProtocolError{Msg: "bank already active", Cmd: cmd, At: now}
	}
	if now < m.refBlockUntil {
		return &TimingError{Param: "tRFC", Required: m.timing.TRFC, Actual: m.timing.TRFC - (m.refBlockUntil - now), Cmd: cmd, At: now}
	}
	if b.everPre {
		if d := now - b.lastPreAt; d < m.timing.TRP {
			return &TimingError{Param: "tRP", Required: m.timing.TRP, Actual: d, Cmd: cmd, At: now}
		}
	}
	if b.everAct {
		if d := now - b.lastActAt; d < m.timing.TRC {
			return &TimingError{Param: "tRC", Required: m.timing.TRC, Actual: d, Cmd: cmd, At: now}
		}
	}
	if m.everActAny {
		if d := now - m.lastActAnyAt; d < m.timing.TRRD {
			return &TimingError{Param: "tRRD", Required: m.timing.TRRD, Actual: d, Cmd: cmd, At: now}
		}
	}

	phys := m.remap.ToPhysical(cmd.Row)
	// Opening the row senses and restores its charge: apply any
	// accumulated disturbance now, then clear the ledger.
	m.senseRow(cmd.Bank, phys, now)

	off := m.timing.TRP
	if b.everPre {
		off = now - b.lastPreAt
	}
	b.activeRow = phys
	b.hasRowOpen = true
	b.rowOpenedAt = now
	b.lastActAt = now
	b.everAct = true
	b.pendingOff = off
	b.actTempC = m.tempC
	m.lastActAnyAt = now
	m.everActAny = true
	m.stats.Acts++

	if m.trr != nil {
		m.trr[cmd.Bank].observe(phys)
	}
	return nil
}

func (m *Module) execPre(cmd Command, now Picos) error {
	b, err := m.bank(cmd, now)
	if err != nil {
		return err
	}
	if b.activeRow < 0 {
		// PRE to an idle bank is a legal NOP.
		m.stats.Pres++
		return nil
	}
	if d := now - b.lastActAt; d < m.timing.TRAS {
		return &TimingError{Param: "tRAS", Required: m.timing.TRAS, Actual: d, Cmd: cmd, At: now}
	}
	if b.everRd {
		if d := now - b.lastRdAt; d < m.timing.TRTP {
			return &TimingError{Param: "tRTP", Required: m.timing.TRTP, Actual: d, Cmd: cmd, At: now}
		}
	}
	if b.everWr {
		if d := now - b.lastWrAt; d < m.timing.TWR {
			return &TimingError{Param: "tWR", Required: m.timing.TWR, Actual: d, Cmd: cmd, At: now}
		}
	}

	// Closing the row: attribute one hammer to physical neighbors in
	// the same subarray, at distances 1 and 2.
	row := b.activeRow
	on := now - b.lastActAt
	for dist := 1; dist <= MaxDisturbDistance; dist++ {
		for _, n := range [2]int{row - dist, row + dist} {
			if n < 0 || n >= m.geo.RowsPerBank || !m.geo.SameSubarray(row, n) {
				continue
			}
			b.ledger(n).Record(dist, on, b.pendingOff, b.actTempC)
		}
	}

	b.activeRow = -1
	b.hasRowOpen = false
	b.lastPreAt = now
	b.everPre = true
	m.stats.Pres++
	return nil
}

func (m *Module) execRd(cmd Command, now Picos) (uint64, error) {
	b, err := m.bank(cmd, now)
	if err != nil {
		return 0, err
	}
	if b.activeRow < 0 {
		return 0, &ProtocolError{Msg: "read from precharged bank", Cmd: cmd, At: now}
	}
	if cmd.Col < 0 || cmd.Col >= m.geo.ColumnsPerRow {
		return 0, &ProtocolError{Msg: "column out of range", Cmd: cmd, At: now}
	}
	if d := now - b.lastActAt; d < m.timing.TRCD {
		return 0, &TimingError{Param: "tRCD", Required: m.timing.TRCD, Actual: d, Cmd: cmd, At: now}
	}
	if b.everCol {
		if d := now - b.lastColAt; d < m.timing.TCCD {
			return 0, &TimingError{Param: "tCCD", Required: m.timing.TCCD, Actual: d, Cmd: cmd, At: now}
		}
	}
	b.lastRdAt = now
	b.lastColAt = now
	b.everRd = true
	b.everCol = true
	m.stats.Reads++

	data := b.data(b.activeRow, m.geo.RowWords())
	beat := m.extractBeat(data, cmd.Col)
	if m.cfg.OnDieECC && m.beatBits == 64 {
		chk := b.check[b.activeRow]
		if chk != nil {
			corrected, res := ECCDecode(beat, chk[cmd.Col])
			switch res {
			case ECCCorrected:
				m.stats.ECCCorrected++
				beat = corrected
			case ECCDetectedUncorrectable:
				m.stats.ECCUncorrectable++
			}
		}
	}
	return beat, nil
}

func (m *Module) execWr(cmd Command, now Picos) error {
	b, err := m.bank(cmd, now)
	if err != nil {
		return err
	}
	if b.activeRow < 0 {
		return &ProtocolError{Msg: "write to precharged bank", Cmd: cmd, At: now}
	}
	if cmd.Col < 0 || cmd.Col >= m.geo.ColumnsPerRow {
		return &ProtocolError{Msg: "column out of range", Cmd: cmd, At: now}
	}
	if d := now - b.lastActAt; d < m.timing.TRCD {
		return &TimingError{Param: "tRCD", Required: m.timing.TRCD, Actual: d, Cmd: cmd, At: now}
	}
	if b.everCol {
		if d := now - b.lastColAt; d < m.timing.TCCD {
			return &TimingError{Param: "tCCD", Required: m.timing.TCCD, Actual: d, Cmd: cmd, At: now}
		}
	}
	b.lastWrAt = now
	b.lastColAt = now
	b.everWr = true
	b.everCol = true
	m.stats.Writes++

	data := b.data(b.activeRow, m.geo.RowWords())
	m.insertBeat(data, cmd.Col, cmd.Data)
	if m.cfg.OnDieECC && m.beatBits == 64 {
		chk := b.check[b.activeRow]
		if chk == nil {
			chk = make([]uint8, m.geo.ColumnsPerRow)
			b.check[b.activeRow] = chk
		}
		chk[cmd.Col] = ECCEncode(cmd.Data)
	}
	return nil
}

func (m *Module) execRef(cmd Command, now Picos) error {
	for i, b := range m.banks {
		if b.activeRow >= 0 {
			return &ProtocolError{Msg: fmt.Sprintf("REF with bank %d active", i), Cmd: cmd, At: now}
		}
	}
	if m.everRef {
		// 8192 REFs must cover tREFW; a slot is tREFW/8192.
		slot := m.timing.TREFW / 8192
		if now-m.lastRefAt > 2*slot {
			m.stats.RefreshWindowOverruns++
		}
	}
	m.lastRefAt = now
	m.everRef = true
	m.refBlockUntil = now + m.timing.TRFC
	m.stats.Refs++

	// Refresh the next rowsPerRef rows in every bank: sensing restores
	// charge, clearing accumulated disturbance.
	for bi := range m.banks {
		for i := 0; i < m.rowsPerRef; i++ {
			row := (m.refRowCursor + i) % m.geo.RowsPerBank
			m.senseRow(bi, row, now)
		}
	}
	m.refRowCursor = (m.refRowCursor + m.rowsPerRef) % m.geo.RowsPerBank

	// TRR rides on REF: refresh suspected victims.
	if m.trr != nil {
		for bi, s := range m.trr {
			for _, v := range s.victims() {
				if v >= 0 && v < m.geo.RowsPerBank {
					m.senseRow(bi, v, now)
					m.stats.TRRRefreshes++
				}
			}
		}
	}
	return nil
}

// retentionFloor is the minimum unrefreshed interval worth scanning a
// row for retention decay: even the weak tail at 90 °C holds ≈20 ms.
const retentionFloor = Millisecond

// senseRow applies accumulated disturbance and retention decay to a
// physical row (as its charge is sensed) and restores it (ledger
// reset, restore timestamp).
func (m *Module) senseRow(bank, phys int, now Picos) {
	b := m.banks[bank]
	if m.ret != nil {
		if last, ok := b.restoredAt[phys]; ok {
			if held := now - last; held >= retentionFloor {
				if data := b.dataIfPresent(phys); data != nil {
					n := m.applyRetention(bank, phys, data, held)
					m.stats.RetentionFlips += int64(n)
					m.stats.FlipsInjected += int64(n)
				}
			}
		}
		b.restoredAt[phys] = now
	}
	led := b.ledgers[phys]
	if led == nil || led.Empty() {
		return
	}
	data := b.data(phys, m.geo.RowWords())
	flips, mask := m.disturber.Disturb(DisturbContext{
		Bank:     bank,
		Row:      phys,
		Ledger:   led,
		Data:     data,
		Geometry: m.geo,
		Up:       m.neighborData(b, phys, -1),
		Down:     m.neighborData(b, phys, +1),
	})
	if flips > 0 {
		ApplyFlipMask(data, mask)
	}
	m.stats.FlipsInjected += int64(flips)
	led.Reset()
}

// neighborData returns the backing words of the row at the given
// physical offset from phys, or nil when it is out of range,
// unallocated, or in a different subarray.
func (m *Module) neighborData(b *bankState, phys, offset int) []uint64 {
	n := phys + offset
	if n < 0 || n >= m.geo.RowsPerBank || !m.geo.SameSubarray(phys, n) {
		return nil
	}
	return b.dataIfPresent(n)
}

// extractBeat gathers the beat at a column address from a row's words.
func (m *Module) extractBeat(data []uint64, col int) uint64 {
	start := col * m.beatBits
	word := start / 64
	off := uint(start % 64)
	v := data[word] >> off
	if rem := 64 - int(off); rem < m.beatBits && word+1 < len(data) {
		v |= data[word+1] << uint(rem)
	}
	if m.beatBits < 64 {
		v &= (1 << uint(m.beatBits)) - 1
	}
	return v
}

// insertBeat stores a beat at a column address into a row's words.
func (m *Module) insertBeat(data []uint64, col int, beat uint64) {
	start := col * m.beatBits
	word := start / 64
	off := uint(start % 64)
	var mask uint64 = ^uint64(0)
	if m.beatBits < 64 {
		mask = (1 << uint(m.beatBits)) - 1
		beat &= mask
	}
	data[word] = data[word]&^(mask<<off) | beat<<off
	if rem := 64 - int(off); rem < m.beatBits && word+1 < len(data) {
		hiMask := mask >> uint(rem)
		data[word+1] = data[word+1]&^hiMask | beat>>uint(rem)
	}
}

// PeekRow returns a copy of the stored data for a *physical* row, or
// nil when the row was never touched. Test/diagnostic use: real chips
// have no such port, and characterization code must use RD commands.
func (m *Module) PeekRow(bank, physRow int) []uint64 {
	if bank < 0 || bank >= m.geo.Banks {
		return nil
	}
	d := m.banks[bank].dataIfPresent(physRow)
	if d == nil {
		return nil
	}
	out := make([]uint64, len(d))
	copy(out, d)
	return out
}

// PeekLedger returns a copy of a physical row's disturbance ledger
// (diagnostic use).
func (m *Module) PeekLedger(bank, physRow int) RowLedger {
	if bank < 0 || bank >= m.geo.Banks {
		return RowLedger{}
	}
	l := m.banks[bank].ledgers[physRow]
	if l == nil {
		return RowLedger{}
	}
	return *l
}

// ActiveRow returns the open physical row of a bank, or -1.
func (m *Module) ActiveRow(bank int) int {
	if bank < 0 || bank >= m.geo.Banks {
		return -1
	}
	return m.banks[bank].activeRow
}
