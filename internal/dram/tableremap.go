package dram

import (
	"fmt"
	"sort"
)

// TableRemap is an explicit logical→physical mapping table — the form
// a reverse-engineering procedure produces when the DRAM's internal
// scheme matches no known candidate. It implements RemapScheme.
type TableRemap struct {
	toPhys []int
	toLog  []int
}

// NewTableRemap builds a TableRemap from an explicit logical→physical
// table, validating that it is a bijection.
func NewTableRemap(toPhys []int) (*TableRemap, error) {
	n := len(toPhys)
	tr := &TableRemap{toPhys: make([]int, n), toLog: make([]int, n)}
	seen := make([]bool, n)
	for l, p := range toPhys {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("dram: mapping entry %d out of range", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("dram: physical row %d mapped twice", p)
		}
		seen[p] = true
		tr.toPhys[l] = p
		tr.toLog[p] = l
	}
	return tr, nil
}

// ToPhysical implements RemapScheme.
func (t *TableRemap) ToPhysical(l int) int {
	if l < 0 || l >= len(t.toPhys) {
		return l
	}
	return t.toPhys[l]
}

// ToLogical implements RemapScheme.
func (t *TableRemap) ToLogical(p int) int {
	if p < 0 || p >= len(t.toLog) {
		return p
	}
	return t.toLog[p]
}

// Name implements RemapScheme.
func (t *TableRemap) Name() string { return "table" }

// ReconstructOrder turns measured adjacency (logical row → its one or
// two physically adjacent logical rows) into a physical ordering of
// the rows involved: physically, rows form a path, so the adjacency
// graph must be a simple path whose two endpoints have degree one.
//
// The returned slice lists logical rows in physical order. The
// orientation is canonicalized so the end with the smaller logical
// address comes first (the measurement cannot distinguish a path from
// its reverse).
func ReconstructOrder(adjacency map[int][]int) ([]int, error) {
	if len(adjacency) == 0 {
		return nil, fmt.Errorf("dram: empty adjacency")
	}
	// Symmetrize: measurement may record a neighbor in one direction
	// only (e.g. edge rows probed from one side).
	adj := make(map[int]map[int]bool)
	link := func(a, b int) {
		if adj[a] == nil {
			adj[a] = make(map[int]bool)
		}
		adj[a][b] = true
	}
	for row, ns := range adjacency {
		for _, n := range ns {
			link(row, n)
			link(n, row)
		}
	}
	// A path has exactly two degree-1 endpoints; every other node has
	// degree 2.
	var ends []int
	for row, ns := range adj {
		switch len(ns) {
		case 1:
			ends = append(ends, row)
		case 2:
		default:
			return nil, fmt.Errorf("dram: row %d has %d neighbors; not a path", row, len(ns))
		}
	}
	if len(ends) != 2 {
		return nil, fmt.Errorf("dram: adjacency has %d endpoints, want 2 (disconnected or cyclic)", len(ends))
	}
	sort.Ints(ends)
	// Walk from the canonical endpoint.
	order := []int{ends[0]}
	prev := -1
	cur := ends[0]
	for {
		next := -1
		for n := range adj[cur] {
			if n != prev {
				next = n
				break
			}
		}
		if next < 0 {
			break
		}
		order = append(order, next)
		prev, cur = cur, next
	}
	if len(order) != len(adj) {
		return nil, fmt.Errorf("dram: walked %d of %d rows; adjacency disconnected", len(order), len(adj))
	}
	return order, nil
}

// TableFromOrder builds a logical→physical TableRemap from a physical
// ordering of logical rows anchored at physical index base: the i-th
// row of the order sits at physical row base+i. Rows outside the
// order map identity. totalRows sizes the table.
func TableFromOrder(order []int, base, totalRows int) (*TableRemap, error) {
	if base < 0 || base+len(order) > totalRows {
		return nil, fmt.Errorf("dram: order [%d, %d) outside %d rows", base, base+len(order), totalRows)
	}
	toPhys := make([]int, totalRows)
	for i := range toPhys {
		toPhys[i] = -1
	}
	usedPhys := make([]bool, totalRows)
	for i, logical := range order {
		if logical < 0 || logical >= totalRows {
			return nil, fmt.Errorf("dram: logical row %d out of range", logical)
		}
		if toPhys[logical] != -1 {
			return nil, fmt.Errorf("dram: logical row %d appears twice", logical)
		}
		toPhys[logical] = base + i
		usedPhys[base+i] = true
	}
	// Identity for unprobed rows, displacing conflicts into the
	// remaining free physical slots in ascending order.
	var free []int
	for p := 0; p < totalRows; p++ {
		if !usedPhys[p] {
			free = append(free, p)
		}
	}
	fi := 0
	for l := 0; l < totalRows; l++ {
		if toPhys[l] != -1 {
			continue
		}
		if l < len(usedPhys) && !usedPhys[l] {
			// Identity slot still free: prefer it.
			toPhys[l] = l
			usedPhys[l] = true
			continue
		}
		// Slot taken: use the next free physical index.
		for fi < len(free) && usedPhys[free[fi]] {
			fi++
		}
		if fi >= len(free) {
			return nil, fmt.Errorf("dram: ran out of physical slots")
		}
		toPhys[l] = free[fi]
		usedPhys[free[fi]] = true
	}
	return NewTableRemap(toPhys)
}
