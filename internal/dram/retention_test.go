package dram

import "testing"

func retentionModule(t *testing.T, cfg *RetentionConfig) *Module {
	t.Helper()
	m, err := NewModule(ModuleConfig{
		Geometry:  Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 64},
		Timing:    DDR4Timing(),
		Retention: cfg,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// writeRow fills a physical row with a pattern at time start and
// returns the time after precharge.
func writeRow(t *testing.T, m *Module, row int, pattern uint64, start Picos) Picos {
	t.Helper()
	tm := m.Timing()
	now := start
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: row}, now); err != nil {
		t.Fatal(err)
	}
	now += tm.TRCD
	for col := 0; col < m.Geometry().ColumnsPerRow; col++ {
		if _, err := m.Exec(Command{Op: OpWr, Bank: 0, Col: col, Data: pattern}, now); err != nil {
			t.Fatal(err)
		}
		now += tm.TCCD
	}
	now += tm.TWR
	if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, now); err != nil {
		t.Fatal(err)
	}
	return now + tm.TRP
}

// readRow reads a row back at time start.
func readRow(t *testing.T, m *Module, row int, start Picos) []uint64 {
	t.Helper()
	tm := m.Timing()
	now := start
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: row}, now); err != nil {
		t.Fatal(err)
	}
	now += tm.TRCD
	var out []uint64
	for col := 0; col < m.Geometry().ColumnsPerRow; col++ {
		v, err := m.Exec(Command{Op: OpRd, Bank: 0, Col: col}, now)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
		now += tm.TCCD
	}
	if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, now+tm.TRTP); err != nil {
		t.Fatal(err)
	}
	return out
}

func countDiff(a []uint64, pattern uint64) int {
	n := 0
	for _, v := range a {
		d := v ^ pattern
		for d != 0 {
			n++
			d &= d - 1
		}
	}
	return n
}

func TestRetentionShortTestsClean(t *testing.T) {
	// The §4.2 methodology property: a test completing well within the
	// refresh window sees no retention errors (even with the model
	// enabled).
	cfg := DefaultRetentionConfig()
	m := retentionModule(t, &cfg)
	end := writeRow(t, m, 10, 0xAAAAAAAAAAAAAAAA, 0)
	// Read back 60 ms later: inside the paper's <64 ms test budget.
	got := readRow(t, m, 10, end+60*Millisecond)
	if n := countDiff(got, 0xAAAAAAAAAAAAAAAA); n != 0 {
		t.Fatalf("%d retention flips within the refresh window", n)
	}
	if m.Stats().RetentionFlips != 0 {
		t.Fatalf("RetentionFlips = %d", m.Stats().RetentionFlips)
	}
}

func TestRetentionLongHoldDecays(t *testing.T) {
	// An aggressively weak configuration: holding for tens of seconds
	// must decay charged cells.
	cfg := RetentionConfig{
		MedianSeconds: 2, Sigma: 0.5, WeakFrac: 0, WeakMedianSeconds: 1,
		TempCoeffPerC: 0.069,
	}
	m := retentionModule(t, &cfg)
	end := writeRow(t, m, 10, ^uint64(0), 0)
	hold := Picos(30) * 1000 * Millisecond // 30 s
	got := readRow(t, m, 10, end+hold)
	n := countDiff(got, ^uint64(0))
	if n == 0 {
		t.Fatal("no decay after 30 s with 2 s median retention")
	}
	// Only charged cells decay: roughly half the cells store their
	// charged state under an all-ones fill.
	total := m.Geometry().RowBits()
	if n > total*3/4 {
		t.Fatalf("%d of %d cells decayed; orientation gate missing", n, total)
	}
	if m.Stats().RetentionFlips != int64(n) {
		t.Fatalf("stats %d != observed %d", m.Stats().RetentionFlips, n)
	}
}

func TestRetentionTemperatureAccelerates(t *testing.T) {
	cfg := RetentionConfig{
		MedianSeconds: 8, Sigma: 0.6, WeakFrac: 0, WeakMedianSeconds: 1,
		TempCoeffPerC: 0.069,
	}
	count := func(tempC float64) int {
		m := retentionModule(t, &cfg)
		m.SetTemperature(tempC)
		end := writeRow(t, m, 10, ^uint64(0), 0)
		got := readRow(t, m, 10, end+8*1000*Millisecond)
		return countDiff(got, ^uint64(0))
	}
	cold := count(50)
	hot := count(90)
	if hot <= cold {
		t.Fatalf("retention failures at 90 °C (%d) should exceed 50 °C (%d)", hot, cold)
	}
}

func TestRetentionRefreshRestores(t *testing.T) {
	cfg := RetentionConfig{
		MedianSeconds: 2, Sigma: 0.5, WeakFrac: 0, WeakMedianSeconds: 1,
		TempCoeffPerC: 0.069,
	}
	m := retentionModule(t, &cfg)
	end := writeRow(t, m, 10, ^uint64(0), 0)
	// Refresh the whole (64-row) bank every 100 ms for 10 s: the
	// weakest cell of the row retains ≈0.35 s (2 s median, σ=0.5,
	// 4096 draws), so a 100 ms cadence must keep the row clean. Each
	// REF covers 1 row, so 64 REFs per refresh pass.
	now := end
	for pass := 0; pass < 100; pass++ {
		for i := 0; i < 64; i++ {
			if _, err := m.Exec(Command{Op: OpRef}, now); err != nil {
				t.Fatal(err)
			}
			now += m.Timing().TRFC
		}
		now += 100 * Millisecond
	}
	got := readRow(t, m, 10, now)
	if n := countDiff(got, ^uint64(0)); n != 0 {
		t.Fatalf("%d flips despite 100 ms refresh cadence against 2 s median retention", n)
	}
}

func TestRetentionDisabledByDefault(t *testing.T) {
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 64},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	end := writeRow(t, m, 10, ^uint64(0), 0)
	got := readRow(t, m, 10, end+Picos(3600)*1000*Millisecond) // 1 hour
	if n := countDiff(got, ^uint64(0)); n != 0 {
		t.Fatalf("retention flips with model disabled: %d", n)
	}
}
