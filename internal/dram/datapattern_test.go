package dram

import "testing"

func TestPatternRowBytesMatchTable1(t *testing.T) {
	// Table 1: victim (distance 0) and even-distance rows take the
	// first column; odd distance rows the second.
	cases := []struct {
		p         PatternKind
		even, odd uint8
	}{
		{PatColStripe, 0x55, 0x55},
		{PatColStripeInv, 0xaa, 0xaa},
		{PatCheckered, 0x55, 0xaa},
		{PatCheckeredInv, 0xaa, 0x55},
		{PatRowStripe, 0x00, 0xff},
		{PatRowStripeInv, 0xff, 0x00},
	}
	for _, c := range cases {
		for _, d := range []int{0, 2, 4, 6, 8, -2, -4} {
			if got := c.p.RowByte(d); got != c.even {
				t.Fatalf("%v dist %d = %#x, want %#x", c.p, d, got, c.even)
			}
		}
		for _, d := range []int{1, 3, 5, 7, -1, -3} {
			if got := c.p.RowByte(d); got != c.odd {
				t.Fatalf("%v dist %d = %#x, want %#x", c.p, d, got, c.odd)
			}
		}
	}
}

func TestComplementPatternsAreComplements(t *testing.T) {
	pairs := [][2]PatternKind{
		{PatColStripe, PatColStripeInv},
		{PatCheckered, PatCheckeredInv},
		{PatRowStripe, PatRowStripeInv},
	}
	for _, pr := range pairs {
		for d := -8; d <= 8; d++ {
			a := pr[0].RowByte(d)
			b := pr[1].RowByte(d)
			if a != ^b {
				t.Fatalf("%v/%v at distance %d: %#x vs %#x not complements", pr[0], pr[1], d, a, b)
			}
		}
	}
}

func TestFillWordExpandsByte(t *testing.T) {
	w := PatCheckered.FillWord(0, 0, 0, 1, 0)
	if w != 0xaaaaaaaaaaaaaaaa {
		t.Fatalf("FillWord = %#x", w)
	}
	w = PatRowStripe.FillWord(0, 0, 0, 0, 5)
	if w != 0 {
		t.Fatalf("rowstripe victim word = %#x", w)
	}
}

func TestRandomPatternDeterministicAndVaried(t *testing.T) {
	a := PatRandom.FillWord(42, 1, 2, 0, 3)
	b := PatRandom.FillWord(42, 1, 2, 0, 3)
	if a != b {
		t.Fatal("random pattern must be deterministic per key")
	}
	c := PatRandom.FillWord(42, 1, 2, 0, 4)
	if a == c {
		t.Fatal("random pattern should vary across words")
	}
	d := PatRandom.FillWord(43, 1, 2, 0, 3)
	if a == d {
		t.Fatal("random pattern should vary across seeds")
	}
}

func TestPatternStrings(t *testing.T) {
	if len(AllPatterns) != 7 {
		t.Fatalf("AllPatterns has %d entries, want 7", len(AllPatterns))
	}
	seen := map[string]bool{}
	for _, p := range AllPatterns {
		s := p.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("bad or duplicate pattern name %q", s)
		}
		seen[s] = true
	}
}
