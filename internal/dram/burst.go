package dram

// Bulk column bursts: the per-row data movement of every RowHammer
// test (write the pattern, read back the flips) issues one command per
// column through the interpreter, which dominates the hot path once
// disturb evaluation is memoized. WrRowBulk/RdRowBulk execute a whole
// column burst in one call with identical protocol checks, identical
// module state, and identical timestamps to the equivalent Wr/Rd+Wait
// command sequence — the softmc executor maps KWrRow/KRdRow here.
//
// Unlike the per-command sequence, a burst validates up front and
// mutates nothing on error (the per-command path can fail midway with
// columns already written); programs abort on error either way.

// burstSetup performs the shared protocol validation of a column
// burst: open row, burst length, tRCD from the activation, tCCD from
// the previous column command and between burst beats.
func (m *Module) burstSetup(op Op, bank, n int, step, start Picos) (*bankState, error) {
	cmd := Command{Op: op, Bank: bank}
	b, err := m.bank(cmd, start)
	if err != nil {
		return nil, err
	}
	if b.activeRow < 0 {
		msg := "read from precharged bank"
		if op == OpWr {
			msg = "write to precharged bank"
		}
		return nil, &ProtocolError{Msg: msg, Cmd: cmd, At: start}
	}
	if n > m.geo.ColumnsPerRow {
		cmd.Col = n - 1
		return nil, &ProtocolError{Msg: "column out of range", Cmd: cmd, At: start}
	}
	if d := start - b.lastActAt; d < m.timing.TRCD {
		return nil, &TimingError{Param: "tRCD", Required: m.timing.TRCD, Actual: d, Cmd: cmd, At: start}
	}
	if b.everCol {
		if d := start - b.lastColAt; d < m.timing.TCCD {
			return nil, &TimingError{Param: "tCCD", Required: m.timing.TCCD, Actual: d, Cmd: cmd, At: start}
		}
	}
	if n > 1 && step < m.timing.TCCD {
		return nil, &TimingError{Param: "tCCD", Required: m.timing.TCCD, Actual: step, Cmd: cmd, At: start}
	}
	return b, nil
}

// WrRowBulk writes beat data[col] to column col of the open row of a
// bank, commands spaced step apart starting at start. State after the
// call — stored data, ECC check words, stats, column timestamps — is
// bit-identical to issuing the equivalent Wr command sequence.
func (m *Module) WrRowBulk(bank int, data []uint64, step, start Picos) error {
	n := len(data)
	if n == 0 {
		return nil
	}
	b, err := m.burstSetup(OpWr, bank, n, step, start)
	if err != nil {
		return err
	}
	row := b.data(b.activeRow, m.geo.RowWords())
	var chk []uint8
	if m.cfg.OnDieECC && m.beatBits == 64 {
		chk = b.check[b.activeRow]
		if chk == nil {
			chk = make([]uint8, m.geo.ColumnsPerRow)
			b.check[b.activeRow] = chk
		}
	}
	for col, beat := range data {
		m.insertBeat(row, col, beat)
		if chk != nil {
			chk[col] = ECCEncode(beat)
		}
	}
	last := start + Picos(n-1)*step
	b.lastWrAt, b.lastColAt = last, last
	b.everWr, b.everCol = true, true
	m.stats.Writes += int64(n)
	return nil
}

// RdRowBulk reads cols beats from columns 0..cols-1 of the open row of
// a bank, commands spaced step apart starting at start, appending the
// beats to dst. State and returned data are bit-identical to the
// equivalent Rd command sequence.
func (m *Module) RdRowBulk(bank, cols int, step, start Picos, dst []uint64) ([]uint64, error) {
	if cols == 0 {
		return dst, nil
	}
	if cols < 0 {
		return dst, &ProtocolError{Msg: "column out of range", Cmd: Command{Op: OpRd, Bank: bank, Col: cols}, At: start}
	}
	b, err := m.burstSetup(OpRd, bank, cols, step, start)
	if err != nil {
		return dst, err
	}
	row := b.data(b.activeRow, m.geo.RowWords())
	var chk []uint8
	if m.cfg.OnDieECC && m.beatBits == 64 {
		chk = b.check[b.activeRow]
	}
	for col := 0; col < cols; col++ {
		beat := m.extractBeat(row, col)
		if chk != nil {
			corrected, res := ECCDecode(beat, chk[col])
			switch res {
			case ECCCorrected:
				m.stats.ECCCorrected++
				beat = corrected
			case ECCDetectedUncorrectable:
				m.stats.ECCUncorrectable++
			}
		}
		dst = append(dst, beat)
	}
	last := start + Picos(cols-1)*step
	b.lastRdAt, b.lastColAt = last, last
	b.everRd, b.everCol = true, true
	m.stats.Reads += int64(cols)
	return dst, nil
}
