package dram

// MaxDisturbDistance is how far (in physical rows) an aggressor's
// disturbance reaches. Distance 1 is the adjacent row; distance 2 rows
// see the residual "single-sided at distance 2" effect studied by the
// paper's blast-radius analyses.
const MaxDisturbDistance = 2

// DistanceStats accumulates the aggression a victim row has received
// from aggressors at one physical distance since the victim's charge
// was last restored (by activation or refresh).
type DistanceStats struct {
	// Count is the number of aggressor activations.
	Count int64
	// SumOn is the total aggressor open time (ACT→PRE) in picoseconds.
	SumOn Picos
	// SumOff is the total precharged time preceding each aggressor
	// activation, in picoseconds.
	SumOff Picos
	// SumTempMilliC is the sum of the module temperature at each
	// aggressor activation, in milli-degrees Celsius (integer to keep
	// the ledger allocation-free and exact).
	SumTempMilliC int64
}

// AvgOnNs returns the mean aggressor on-time in nanoseconds, or 0 when
// no activations have been recorded.
func (d DistanceStats) AvgOnNs() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.SumOn) / float64(d.Count) / 1000
}

// AvgOffNs returns the mean aggressor off-time in nanoseconds.
func (d DistanceStats) AvgOffNs() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.SumOff) / float64(d.Count) / 1000
}

// AvgTempC returns the mean temperature across activations in Celsius.
func (d DistanceStats) AvgTempC() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.SumTempMilliC) / float64(d.Count) / 1000
}

// RowLedger is the per-victim-row disturbance account. Dist[0] holds
// distance-1 aggression, Dist[1] distance-2.
type RowLedger struct {
	Dist [MaxDisturbDistance]DistanceStats
}

// Total returns the total aggressor activation count at all distances.
func (l RowLedger) Total() int64 {
	var n int64
	for _, d := range l.Dist {
		n += d.Count
	}
	return n
}

// Empty reports whether the ledger has recorded no aggression.
func (l RowLedger) Empty() bool { return l.Total() == 0 }

// Reset clears all accumulated aggression (the row's charge was
// restored).
func (l *RowLedger) Reset() { *l = RowLedger{} }

// Record adds one aggressor activation at the given distance
// (1-based), with its on/off time and the temperature at which it
// occurred.
func (l *RowLedger) Record(distance int, on, off Picos, tempC float64) {
	if distance < 1 || distance > MaxDisturbDistance {
		return
	}
	d := &l.Dist[distance-1]
	d.Count++
	d.SumOn += on
	d.SumOff += off
	d.SumTempMilliC += int64(tempC * 1000)
}

// DisturbContext is handed to a Disturber when a victim row's charge is
// sensed. Data is the row's backing words; the Disturber must treat it
// (and Up/Down) as read-only and express flips through the returned
// mask instead.
type DisturbContext struct {
	Bank int
	// Row is the physical row index of the victim.
	Row    int
	Ledger *RowLedger
	Data   []uint64
	// Geometry of the module, for bit addressing.
	Geometry Geometry
	// Up and Down are the backing words of the physically adjacent
	// rows (Row-1 and Row+1), or nil when that row is out of range,
	// unallocated, or in a different subarray.
	Up, Down []uint64
}

// Disturber injects RowHammer bit flips when a victim row is sensed.
// Implementations live in internal/faultmodel; dram only defines the
// boundary so the dependency points one way.
type Disturber interface {
	// Disturb evaluates accumulated disturbance against ctx and
	// returns the number of bits to flip plus a flip mask (one bit per
	// cell, same word layout as ctx.Data) to XOR into the stored row.
	// The mask may alias disturber-owned scratch: it is only valid
	// until the next Disturb call, and is nil when no bits flip.
	Disturb(ctx DisturbContext) (int, []uint64)
}

// NopDisturber injects no faults (an ideal, RowHammer-free chip).
type NopDisturber struct{}

// Disturb implements Disturber.
func (NopDisturber) Disturb(DisturbContext) (int, []uint64) { return 0, nil }

// ApplyFlipMask XORs a flip mask into a row's backing words, one word
// at a time — the bitplane application of kernel-emitted flips. A nil
// or short mask only touches the words it covers.
func ApplyFlipMask(data, mask []uint64) {
	n := len(mask)
	if len(data) < n {
		n = len(data)
	}
	for i := 0; i < n; i++ {
		data[i] ^= mask[i]
	}
}
