package dram

import (
	"testing"
	"testing/quick"

	"rowhammer/internal/rng"
)

func TestNewTableRemapBijection(t *testing.T) {
	tr, err := NewTableRemap([]int{2, 0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, tr, 4)
	if tr.ToPhysical(0) != 2 || tr.ToLogical(2) != 0 {
		t.Fatal("mapping wrong")
	}
}

func TestNewTableRemapRejectsInvalid(t *testing.T) {
	if _, err := NewTableRemap([]int{0, 0, 1}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := NewTableRemap([]int{0, 5}); err == nil {
		t.Fatal("expected range error")
	}
}

// oracleAdjacency builds the adjacency map a perfect single-sided
// probe of every row in [lo, hi) under scheme s would produce.
func oracleAdjacency(s RemapScheme, lo, hi int) map[int][]int {
	adj := make(map[int][]int)
	for l := lo; l < hi; l++ {
		p := s.ToPhysical(l)
		for _, np := range []int{p - 1, p + 1} {
			nl := s.ToLogical(np)
			if nl >= lo && nl < hi && np >= s.ToPhysical(lo)-64 {
				// Keep neighbors inside the probed block.
				inBlock := false
				for m := lo; m < hi; m++ {
					if m == nl {
						inBlock = true
						break
					}
				}
				if inBlock {
					adj[l] = append(adj[l], nl)
				}
			}
		}
	}
	return adj
}

func TestReconstructOrderRecoversSchemes(t *testing.T) {
	for _, s := range []RemapScheme{DirectRemap{}, MirrorRemap{}, DefaultScramble()} {
		// Probe a 32-row block whose physical image is the same block
		// (all three schemes permute within 16-row groups).
		adj := oracleAdjacency(s, 0, 32)
		order, err := ReconstructOrder(adj)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(order) != 32 {
			t.Fatalf("%s: recovered %d rows", s.Name(), len(order))
		}
		// The recovered order must list logical rows in physical
		// sequence (or its exact reverse; canonicalized by endpoint).
		forward := true
		if s.ToPhysical(order[0]) > s.ToPhysical(order[1]) {
			forward = false
		}
		for i := 1; i < len(order); i++ {
			d := s.ToPhysical(order[i]) - s.ToPhysical(order[i-1])
			if forward && d != 1 || !forward && d != -1 {
				t.Fatalf("%s: order not physically contiguous at %d", s.Name(), i)
			}
		}
	}
}

func TestReconstructOrderRejectsNonPath(t *testing.T) {
	// A cycle.
	if _, err := ReconstructOrder(map[int][]int{0: {1, 2}, 1: {2, 0}, 2: {0, 1}}); err == nil {
		t.Fatal("expected error for a cycle")
	}
	// Disconnected.
	if _, err := ReconstructOrder(map[int][]int{0: {1}, 2: {3}}); err == nil {
		t.Fatal("expected error for disconnected components")
	}
	// A star.
	if _, err := ReconstructOrder(map[int][]int{0: {1, 2, 3}}); err == nil {
		t.Fatal("expected error for a degree-3 node")
	}
	if _, err := ReconstructOrder(nil); err == nil {
		t.Fatal("expected error for empty adjacency")
	}
}

func TestTableFromOrderRoundTrip(t *testing.T) {
	// Recover MirrorRemap's first 16 rows and verify the resulting
	// table matches the real scheme on that block.
	real := MirrorRemap{}
	adj := oracleAdjacency(real, 0, 16)
	order, err := ReconstructOrder(adj)
	if err != nil {
		t.Fatal(err)
	}
	// Anchor: the block's physical base is 0.
	tr, err := TableFromOrder(order, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, tr, 64)
	// Physical adjacency must agree with the real scheme: rows that
	// are physically adjacent under the table are physically adjacent
	// in reality (orientation-insensitive check).
	for i := 1; i < 16; i++ {
		a := tr.ToLogical(i - 1)
		b := tr.ToLogical(i)
		d := real.ToPhysical(a) - real.ToPhysical(b)
		if d != 1 && d != -1 {
			t.Fatalf("table neighbors %d,%d not physically adjacent (Δ=%d)", a, b, d)
		}
	}
}

func TestTableFromOrderValidation(t *testing.T) {
	if _, err := TableFromOrder([]int{0, 1}, 63, 64); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := TableFromOrder([]int{1, 1}, 0, 8); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := TableFromOrder([]int{9}, 0, 8); err == nil {
		t.Fatal("expected out-of-range logical row error")
	}
}

func TestTableFromOrderPropertyBijection(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := rng.NewStream(seed)
		const total = 40
		n := 4 + s.Intn(12)
		base := s.Intn(total - n)
		// A random set of logical rows as the order.
		perm := make([]int, total)
		s.Perm(perm)
		order := perm[:n]
		tr, err := TableFromOrder(order, base, total)
		if err != nil {
			return false
		}
		seen := make([]bool, total)
		for l := 0; l < total; l++ {
			p := tr.ToPhysical(l)
			if p < 0 || p >= total || seen[p] || tr.ToLogical(p) != l {
				return false
			}
			seen[p] = true
		}
		// Ordered rows sit at base+i.
		for i, l := range order {
			if tr.ToPhysical(l) != base+i {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
