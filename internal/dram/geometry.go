// Package dram implements a command-level simulator of DDR3/DDR4 DRAM
// modules: the hierarchical organization (module→rank→chip→bank→
// subarray→row→cell), the JEDEC command set with timing-rule checking,
// per-bank state machines, in-DRAM logical→physical row remapping,
// Target Row Refresh (TRR) samplers, and on-die ECC.
//
// The simulator exposes exactly the interface a memory controller (our
// internal/softmc) sees on real hardware: ACT/PRE/RD/WR/REF commands
// with data, subject to timing parameters. Circuit-level RowHammer
// disturbance is delegated to a pluggable Disturber (implemented by
// internal/faultmodel), which the bank consults whenever a row's charge
// is sensed (on activation) — mirroring how disturbance in a real chip
// manifests only when the victim row is next opened or refreshed.
package dram

import "fmt"

// Geometry describes the physical organization of one DRAM module.
// A module is a rank of Chips operating in lock-step; each chip
// contributes ChipWidth bits to every column access.
type Geometry struct {
	// Banks per chip (all chips in the rank share bank addressing).
	Banks int
	// RowsPerBank is the number of physical rows in each bank.
	RowsPerBank int
	// SubarrayRows is the number of rows per subarray. Disturbance does
	// not propagate across subarray boundaries (sense-amplifier stripes
	// isolate neighboring subarrays).
	SubarrayRows int
	// Chips in the rank (e.g. 8 for a x8 ECC-less DIMM rank).
	Chips int
	// ChipWidth is the output width of one chip in bits (x4, x8, x16).
	ChipWidth int
	// ColumnsPerRow is the number of column addresses per row.
	ColumnsPerRow int
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case g.Banks <= 0:
		return fmt.Errorf("dram: invalid bank count %d", g.Banks)
	case g.RowsPerBank <= 0:
		return fmt.Errorf("dram: invalid rows per bank %d", g.RowsPerBank)
	case g.SubarrayRows <= 0 || g.SubarrayRows > g.RowsPerBank:
		return fmt.Errorf("dram: invalid subarray size %d", g.SubarrayRows)
	case g.RowsPerBank%g.SubarrayRows != 0:
		return fmt.Errorf("dram: rows per bank %d not a multiple of subarray size %d", g.RowsPerBank, g.SubarrayRows)
	case g.Chips <= 0:
		return fmt.Errorf("dram: invalid chip count %d", g.Chips)
	case g.ChipWidth != 4 && g.ChipWidth != 8 && g.ChipWidth != 16:
		return fmt.Errorf("dram: invalid chip width x%d", g.ChipWidth)
	case g.ColumnsPerRow <= 0:
		return fmt.Errorf("dram: invalid columns per row %d", g.ColumnsPerRow)
	}
	return nil
}

// RowBits returns the number of data bits in one module-level row
// (the concatenation of the per-chip rows).
func (g Geometry) RowBits() int { return g.Chips * g.ChipWidth * g.ColumnsPerRow }

// RowWords returns the number of 64-bit words backing one row.
func (g Geometry) RowWords() int { return (g.RowBits() + 63) / 64 }

// ChipRowBits returns the number of bits one chip stores per row.
func (g Geometry) ChipRowBits() int { return g.ChipWidth * g.ColumnsPerRow }

// Subarrays returns the number of subarrays per bank.
func (g Geometry) Subarrays() int { return g.RowsPerBank / g.SubarrayRows }

// SubarrayOf returns the subarray index containing physical row r.
func (g Geometry) SubarrayOf(r int) int { return r / g.SubarrayRows }

// SameSubarray reports whether physical rows a and b share a subarray.
func (g Geometry) SameSubarray(a, b int) bool { return g.SubarrayOf(a) == g.SubarrayOf(b) }

// BitIndex returns the index of a bit within a row's backing words for
// the given chip, column and intra-chip bit line.
//
// Bits are laid out column-major across chips, matching how a burst
// access gathers ChipWidth bits from every chip at one column address:
// bit = (col*Chips + chip)*ChipWidth + line.
func (g Geometry) BitIndex(chip, col, line int) int {
	return (col*g.Chips+chip)*g.ChipWidth + line
}

// BitLocation inverts BitIndex, returning (chip, column, line) of an
// absolute row-bit index.
func (g Geometry) BitLocation(bit int) (chip, col, line int) {
	line = bit % g.ChipWidth
	rest := bit / g.ChipWidth
	chip = rest % g.Chips
	col = rest / g.Chips
	return chip, col, line
}

// DefaultDDR4Geometry returns a reduced-scale DDR4 x8 geometry used by
// tests: real row stride behavior with tractable row/column counts.
func DefaultDDR4Geometry() Geometry {
	return Geometry{
		Banks:         4,
		RowsPerBank:   2048,
		SubarrayRows:  512,
		Chips:         8,
		ChipWidth:     8,
		ColumnsPerRow: 128,
	}
}

// PaperDDR4Geometry returns a full-scale geometry matching the tested
// DDR4 modules (8Gb x8: 16 banks, 64K rows ... scaled to one bank
// group's worth of banks; used by -scale=paper CLI runs).
func PaperDDR4Geometry() Geometry {
	return Geometry{
		Banks:         16,
		RowsPerBank:   65536,
		SubarrayRows:  512,
		Chips:         8,
		ChipWidth:     8,
		ColumnsPerRow: 1024,
	}
}

// DefaultDDR3Geometry returns a reduced-scale DDR3 x8 geometry.
func DefaultDDR3Geometry() Geometry {
	return Geometry{
		Banks:         4,
		RowsPerBank:   1024,
		SubarrayRows:  512,
		Chips:         8,
		ChipWidth:     8,
		ColumnsPerRow: 128,
	}
}
