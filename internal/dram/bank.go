package dram

// bankState is the per-bank state machine plus timing bookkeeping.
type bankState struct {
	// activeRow is the open physical row, or -1 when precharged.
	activeRow int

	// Timing bookkeeping (absolute Picos; negative sentinel = never).
	lastActAt   Picos
	lastPreAt   Picos
	lastRdAt    Picos
	lastWrAt    Picos
	lastColAt   Picos
	everAct     bool
	everPre     bool
	everCol     bool
	everRd      bool
	everWr      bool
	pendingOff  Picos   // precharged time preceding the current activation
	actTempC    float64 // module temperature when the row was opened
	hasRowOpen  bool
	rowOpenedAt Picos

	// rows maps physical row index → backing data words. Rows are
	// allocated lazily on first activation or write.
	rows map[int][]uint64
	// check maps physical row index → on-die ECC check bytes (one per
	// 64-bit data word), allocated only when ECC is enabled.
	check map[int][]uint8
	// ledgers maps physical row index → accumulated disturbance.
	ledgers map[int]*RowLedger
	// restoredAt maps physical row index → last charge-restore time
	// (tracked only when retention modeling is enabled).
	restoredAt map[int]Picos
}

func newBankState() *bankState {
	return &bankState{
		activeRow:  -1,
		rows:       make(map[int][]uint64),
		check:      make(map[int][]uint8),
		ledgers:    make(map[int]*RowLedger),
		restoredAt: make(map[int]Picos),
	}
}

// ledger returns the ledger for a physical row, creating it on demand.
func (b *bankState) ledger(row int) *RowLedger {
	l := b.ledgers[row]
	if l == nil {
		l = &RowLedger{}
		b.ledgers[row] = l
	}
	return l
}

// data returns the backing words for a physical row, allocating a
// zero-filled row on demand.
func (b *bankState) data(row, words int) []uint64 {
	d := b.rows[row]
	if d == nil {
		d = make([]uint64, words)
		b.rows[row] = d
	}
	return d
}

// dataIfPresent returns the row's backing words without allocating.
func (b *bankState) dataIfPresent(row int) []uint64 { return b.rows[row] }
