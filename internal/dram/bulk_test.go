package dram

import "testing"

func TestHammerBulkMatchesExactLoop(t *testing.T) {
	mk := func() *Module {
		m, err := NewModule(ModuleConfig{
			Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
			Timing:   DDR4Timing(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	const hammers = 37
	tm := DDR4Timing()

	// Exact loop.
	exact := mk()
	var now Picos
	for i := 0; i < hammers; i++ {
		for _, r := range []int{9, 11} {
			if _, err := exact.Exec(Command{Op: OpAct, Bank: 0, Row: r}, now); err != nil {
				t.Fatal(err)
			}
			if _, err := exact.Exec(Command{Op: OpPre, Bank: 0}, now+tm.TRAS); err != nil {
				t.Fatal(err)
			}
			now += tm.TRAS + tm.TRP
		}
	}

	// Bulk loop.
	bulk := mk()
	end, err := bulk.HammerBulk(0, []int{9, 11}, hammers, tm.TRAS, tm.TRP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != now {
		t.Fatalf("bulk end time %d, exact %d", end, now)
	}

	// Victim and single-sided-victim ledgers must match exactly.
	for _, r := range []int{7, 8, 10, 12, 13} {
		le := exact.PeekLedger(0, r)
		lb := bulk.PeekLedger(0, r)
		if le != lb {
			t.Fatalf("row %d ledger mismatch:\nexact %+v\nbulk  %+v", r, le, lb)
		}
	}
	if exact.Stats().Acts != bulk.Stats().Acts {
		t.Fatalf("act counts differ: %d vs %d", exact.Stats().Acts, bulk.Stats().Acts)
	}
}

func TestHammerBulkSmallCounts(t *testing.T) {
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tm := m.Timing()
	for _, count := range []int64{0, 1, 2} {
		if _, err := m.HammerBulk(0, []int{5}, count, tm.TRAS, tm.TRP, 0); err != nil {
			t.Fatalf("count %d: %v", count, err)
		}
	}
	// count 1+2 = 3 activations of row 5 → row 6 has 3 distance-1.
	if got := m.PeekLedger(0, 6).Dist[0].Count; got != 3 {
		t.Fatalf("row 6 count = %d, want 3", got)
	}
}

func TestHammerBulkClampsSubMinimumTimings(t *testing.T) {
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.HammerBulk(0, []int{9, 11}, 10, 0, 0, 0); err != nil {
		t.Fatalf("sub-minimum timings should clamp, got %v", err)
	}
	led := m.PeekLedger(0, 10)
	tm := m.Timing()
	if got := led.Dist[0].AvgOnNs(); got != tm.TRAS.Nanoseconds() {
		t.Fatalf("clamped on-time = %v", got)
	}
	if got := led.Dist[0].AvgOffNs(); got != tm.TRP.Nanoseconds() {
		t.Fatalf("clamped off-time = %v", got)
	}
}

func TestHammerBulkRespectsPriorBankState(t *testing.T) {
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tm := m.Timing()
	// Leave the bank active: bulk must refuse.
	if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.HammerBulk(0, []int{9}, 5, tm.TRAS, tm.TRP, tm.TRAS*2); err == nil {
		t.Fatal("expected error with bank active")
	}
	// Precharge; bulk starting before tRP elapses must self-delay, not
	// error.
	if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, tm.TRAS*2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.HammerBulk(0, []int{9}, 5, tm.TRAS, tm.TRP, tm.TRAS*2+1); err != nil {
		t.Fatalf("bulk should delay for tRP, got %v", err)
	}
}

func TestHammerBulkExtendedOnTimeRecorded(t *testing.T) {
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	on := PicosFromNs(154.5)
	off := PicosFromNs(40.5)
	end, err := m.HammerBulk(0, []int{9, 11}, 100, on, off, 0)
	if err != nil {
		t.Fatal(err)
	}
	led := m.PeekLedger(0, 10)
	if got := led.Dist[0].AvgOnNs(); got != 154.5 {
		t.Fatalf("avg on = %v, want 154.5", got)
	}
	if got := led.Dist[0].AvgOffNs(); got != 40.5 {
		t.Fatalf("avg off = %v, want 40.5", got)
	}
	if want := Picos(100) * 2 * (on + off); end != want {
		t.Fatalf("end = %d, want %d", end, want)
	}
}

func TestHammerBulkErrors(t *testing.T) {
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.HammerBulk(0, nil, 5, 0, 0, 0); err == nil {
		t.Fatal("expected error for empty row list")
	}
	if _, err := m.HammerBulk(0, []int{1}, -1, 0, 0, 0); err == nil {
		t.Fatal("expected error for negative count")
	}
	if _, err := m.HammerBulk(0, []int{9999}, 5, 0, 0, 0); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
}
