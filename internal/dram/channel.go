package dram

import "fmt"

// Channel models the level of Fig. 1 above one module: a memory
// channel whose I/O bus is time-multiplexed across multiple ranks.
// Because the bus is shared, commands to different ranks are
// serialized, and consecutive data transfers from different ranks pay
// a bus-turnaround penalty — which is why characterization (and
// attacks) run against one rank at a time, but a deployed defense must
// budget for the whole channel's activation stream.
type Channel struct {
	ranks []*Module
	// tCK is the command-bus granularity shared by all ranks.
	tck Picos
	// Turnaround is the rank-to-rank switch penalty on the data bus.
	Turnaround Picos

	lastRank   int
	lastCmdAt  Picos
	everIssued bool
	stats      ChannelStats
}

// ChannelStats counts channel-level activity.
type ChannelStats struct {
	Commands     int64
	RankSwitches int64
	// TurnaroundTime is total time spent on bus turnaround.
	TurnaroundTime Picos
}

// NewChannel builds a channel over the given ranks. All ranks must
// share the same tCK.
func NewChannel(ranks []*Module, turnaround Picos) (*Channel, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("dram: channel needs at least one rank")
	}
	tck := ranks[0].Timing().TCK
	for i, r := range ranks[1:] {
		if r.Timing().TCK != tck {
			return nil, fmt.Errorf("dram: rank %d tCK differs", i+1)
		}
	}
	return &Channel{ranks: ranks, tck: tck, Turnaround: turnaround, lastRank: -1}, nil
}

// Ranks returns the number of ranks on the channel.
func (c *Channel) Ranks() int { return len(c.ranks) }

// Rank returns a rank's module.
func (c *Channel) Rank(i int) *Module {
	if i < 0 || i >= len(c.ranks) {
		return nil
	}
	return c.ranks[i]
}

// Stats returns channel-level counters.
func (c *Channel) Stats() ChannelStats { return c.stats }

// Exec issues a command to a rank at time now, enforcing the shared
// command bus (one command per tCK across all ranks) and rank-switch
// turnaround. It returns the adjusted issue time along with the
// command's result.
func (c *Channel) Exec(rank int, cmd Command, now Picos) (uint64, Picos, error) {
	if rank < 0 || rank >= len(c.ranks) {
		return 0, now, fmt.Errorf("dram: rank %d out of range", rank)
	}
	at := now
	if c.everIssued {
		// Shared command bus: one command per cycle.
		if min := c.lastCmdAt + c.tck; at < min {
			at = min
		}
		// Rank switch on a column command pays turnaround.
		if rank != c.lastRank && (cmd.Op == OpRd || cmd.Op == OpWr) {
			at += c.Turnaround
			c.stats.RankSwitches++
			c.stats.TurnaroundTime += c.Turnaround
		}
	}
	v, err := c.ranks[rank].Exec(cmd, at)
	if err != nil {
		return 0, at, err
	}
	c.lastRank = rank
	c.lastCmdAt = at
	c.everIssued = true
	c.stats.Commands++
	return v, at, nil
}
