package dram

import "fmt"

// RemapScheme is a DRAM-internal logical→physical row-address mapping.
// Manufacturers remap controller-visible row addresses for routing and
// post-repair reasons; the mapping must be reverse engineered before
// physically adjacent aggressor rows can be chosen (§4.2).
//
// Implementations must be bijections on [0, rows).
type RemapScheme interface {
	// ToPhysical converts a controller-visible row address to the
	// internal physical row index.
	ToPhysical(logical int) int
	// ToLogical inverts ToPhysical.
	ToLogical(physical int) int
	// Name identifies the scheme.
	Name() string
}

// DirectRemap maps logical addresses to identical physical addresses.
type DirectRemap struct{}

// ToPhysical implements RemapScheme.
func (DirectRemap) ToPhysical(l int) int { return l }

// ToLogical implements RemapScheme.
func (DirectRemap) ToLogical(p int) int { return p }

// Name implements RemapScheme.
func (DirectRemap) Name() string { return "direct" }

// MirrorRemap models address mirroring observed in real modules: within
// every block of 16 rows, the upper 8 rows appear in reversed order
// (physical = logical XOR 7 when bit 3 is set). Self-inverse.
type MirrorRemap struct{}

// ToPhysical implements RemapScheme.
func (MirrorRemap) ToPhysical(l int) int {
	if l&8 != 0 {
		return l ^ 7
	}
	return l
}

// ToLogical implements RemapScheme.
func (m MirrorRemap) ToLogical(p int) int { return m.ToPhysical(p) }

// Name implements RemapScheme.
func (MirrorRemap) Name() string { return "mirror" }

// ScrambleRemap models low-bit scrambling: a fixed permutation of the
// low 3 address bits applied uniformly (a simplified version of the
// remappings recovered from real chips).
type ScrambleRemap struct {
	perm [8]int
	inv  [8]int
}

// NewScrambleRemap builds a ScrambleRemap from a permutation of 0..7.
func NewScrambleRemap(perm [8]int) (*ScrambleRemap, error) {
	var s ScrambleRemap
	seen := [8]bool{}
	for i, p := range perm {
		if p < 0 || p > 7 || seen[p] {
			return nil, fmt.Errorf("dram: invalid low-bit permutation %v", perm)
		}
		seen[p] = true
		s.perm[i] = p
		s.inv[p] = i
	}
	return &s, nil
}

// ToPhysical implements RemapScheme.
func (s *ScrambleRemap) ToPhysical(l int) int { return l&^7 | s.perm[l&7] }

// ToLogical implements RemapScheme.
func (s *ScrambleRemap) ToLogical(p int) int { return p&^7 | s.inv[p&7] }

// Name implements RemapScheme.
func (s *ScrambleRemap) Name() string { return "scramble" }

// DefaultScramble returns the low-bit permutation used by the
// manufacturer-C-like profile: {0,1,3,2,5,4,6,7}.
func DefaultScramble() *ScrambleRemap {
	s, err := NewScrambleRemap([8]int{0, 1, 3, 2, 5, 4, 6, 7})
	if err != nil {
		panic(err)
	}
	return s
}
