package dram

import "fmt"

// Picos is a point in time or a duration, in picoseconds. All DRAM
// timings are integral picosecond counts, which keeps command-to-
// command arithmetic exact at SoftMC's 1.25 ns / 2.5 ns granularity.
type Picos int64

// Common conversion helpers.
const (
	Picosecond  Picos = 1
	Nanosecond  Picos = 1000
	Microsecond Picos = 1000 * Nanosecond
	Millisecond Picos = 1000 * Microsecond
)

// Nanoseconds returns the duration as a float64 nanosecond count.
func (p Picos) Nanoseconds() float64 { return float64(p) / 1000 }

// PicosFromNs converts a float nanosecond value to Picos, rounding to
// the nearest picosecond.
func PicosFromNs(ns float64) Picos {
	if ns >= 0 {
		return Picos(ns*1000 + 0.5)
	}
	return Picos(ns*1000 - 0.5)
}

// Op is a DRAM command opcode.
type Op uint8

// The DRAM command set used by the study. RDAP/WRAP (auto-precharge)
// are modeled as RD/WR followed by PRE at tRTP/tWR.
const (
	OpNop Op = iota
	OpAct
	OpPre
	OpPreAll
	OpRd
	OpWr
	OpRef
)

// String returns the JEDEC mnemonic of the opcode.
func (o Op) String() string {
	switch o {
	case OpNop:
		return "NOP"
	case OpAct:
		return "ACT"
	case OpPre:
		return "PRE"
	case OpPreAll:
		return "PREA"
	case OpRd:
		return "RD"
	case OpWr:
		return "WR"
	case OpRef:
		return "REF"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// Command is one DRAM bus command. Row addresses are logical
// (memory-controller visible); the module applies its internal
// remapping. Data is used by WR only and must hold ChipWidth*Chips
// bits (one burst beat; the simulator models a single-beat burst).
type Command struct {
	Op   Op
	Bank int
	Row  int
	Col  int
	Data uint64
}

// String renders the command for traces and error messages.
func (c Command) String() string {
	switch c.Op {
	case OpAct:
		return fmt.Sprintf("ACT b%d r%d", c.Bank, c.Row)
	case OpPre:
		return fmt.Sprintf("PRE b%d", c.Bank)
	case OpPreAll:
		return "PREA"
	case OpRd:
		return fmt.Sprintf("RD b%d c%d", c.Bank, c.Col)
	case OpWr:
		return fmt.Sprintf("WR b%d c%d %#x", c.Bank, c.Col, c.Data)
	case OpRef:
		return "REF"
	default:
		return c.Op.String()
	}
}

// TimingError reports a violated timing parameter.
type TimingError struct {
	Param    string
	Required Picos
	Actual   Picos
	Cmd      Command
	At       Picos
}

func (e *TimingError) Error() string {
	return fmt.Sprintf("dram: %s violation at t=%dps for %s: need %dps, got %dps",
		e.Param, int64(e.At), e.Cmd, int64(e.Required), int64(e.Actual))
}

// ProtocolError reports an illegal command for the current bank state.
type ProtocolError struct {
	Msg string
	Cmd Command
	At  Picos
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("dram: protocol error at t=%dps for %s: %s", int64(e.At), e.Cmd, e.Msg)
}
