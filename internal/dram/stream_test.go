package dram

import (
	"testing"

	"rowhammer/internal/rng"
)

// TestRandomLegalCommandStream drives the module with a long random
// but legally-scheduled command stream and checks that (1) the module
// never reports a protocol or timing error, and (2) with no disturber
// every read returns exactly what was last written — whatever the
// interleaving of banks, rows, refreshes and precharges.
func TestRandomLegalCommandStream(t *testing.T) {
	g := Geometry{Banks: 4, RowsPerBank: 128, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 16}
	m, err := NewModule(ModuleConfig{Geometry: g, Timing: DDR4Timing(), OnDieECC: true})
	if err != nil {
		t.Fatal(err)
	}
	tm := m.Timing()
	s := rng.NewStream(0xfeed)

	// Shadow model of expected contents: (bank, physRow, col) → beat.
	shadow := make(map[[3]int]uint64)

	// Per-bank scheduler state.
	type bankSched struct {
		open      bool
		row       int
		earliest  Picos // earliest next command for this bank
		actAt     Picos
		lastColAt Picos
		everCol   bool
		lastRdAt  Picos
		lastWrAt  Picos
		everRd    bool
		everWr    bool
	}
	banks := make([]bankSched, g.Banks)
	now := Picos(0)
	lastActAny := Picos(-1 << 40)

	max := func(a, b Picos) Picos {
		if a > b {
			return a
		}
		return b
	}
	issue := func(cmd Command, at Picos) uint64 {
		t.Helper()
		v, err := m.Exec(cmd, at)
		if err != nil {
			t.Fatalf("stream error at %d: %v (cmd %s)", at, err, cmd)
		}
		if at > now {
			now = at
		}
		now += tm.TCK
		return v
	}

	const steps = 20000
	reads, writes := 0, 0
	for i := 0; i < steps; i++ {
		b := s.Intn(g.Banks)
		bs := &banks[b]
		switch op := s.Intn(10); {
		case op < 3 && !bs.open: // ACT
			at := max(now, max(bs.earliest, lastActAny+tm.TRRD))
			row := s.Intn(g.RowsPerBank)
			issue(Command{Op: OpAct, Bank: b, Row: row}, at)
			bs.open = true
			bs.row = row
			bs.actAt = at
			bs.everCol = false
			bs.everRd, bs.everWr = false, false
			lastActAny = at
		case op < 6 && bs.open: // WR
			at := max(now, bs.actAt+tm.TRCD)
			if bs.everCol {
				at = max(at, bs.lastColAt+tm.TCCD)
			}
			col := s.Intn(g.ColumnsPerRow)
			data := s.Uint64()
			issue(Command{Op: OpWr, Bank: b, Col: col, Data: data}, at)
			phys := m.Remap().ToPhysical(bs.row)
			shadow[[3]int{b, phys, col}] = data
			bs.lastColAt, bs.everCol = at, true
			bs.lastWrAt, bs.everWr = at, true
			writes++
		case op < 9 && bs.open: // RD
			at := max(now, bs.actAt+tm.TRCD)
			if bs.everCol {
				at = max(at, bs.lastColAt+tm.TCCD)
			}
			col := s.Intn(g.ColumnsPerRow)
			got := issue(Command{Op: OpRd, Bank: b, Col: col}, at)
			phys := m.Remap().ToPhysical(bs.row)
			if want := shadow[[3]int{b, phys, col}]; got != want {
				t.Fatalf("step %d: read b%d r%d(phys %d) c%d = %#x, want %#x",
					i, b, bs.row, phys, col, got, want)
			}
			bs.lastColAt, bs.everCol = at, true
			bs.lastRdAt, bs.everRd = at, true
			reads++
		case bs.open: // PRE
			at := max(now, bs.actAt+tm.TRAS)
			if bs.everRd {
				at = max(at, bs.lastRdAt+tm.TRTP)
			}
			if bs.everWr {
				at = max(at, bs.lastWrAt+tm.TWR)
			}
			issue(Command{Op: OpPre, Bank: b}, at)
			bs.open = false
			bs.earliest = max(at+tm.TRP, bs.actAt+tm.TRC)
		default: // occasionally REF (needs all banks idle)
			if s.Intn(50) != 0 {
				continue
			}
			at := now
			allIdle := true
			for bi := range banks {
				if banks[bi].open {
					allIdle = false
					break
				}
				at = max(at, banks[bi].earliest)
			}
			if !allIdle {
				continue
			}
			issue(Command{Op: OpRef}, at)
			for bi := range banks {
				banks[bi].earliest = max(banks[bi].earliest, at+tm.TRFC)
			}
			lastActAny = max(lastActAny, at+tm.TRFC-tm.TRRD)
		}
	}
	if reads < 1000 || writes < 1000 {
		t.Fatalf("stream too thin: %d reads, %d writes", reads, writes)
	}
	st := m.Stats()
	if st.ECCUncorrectable != 0 {
		t.Fatalf("spurious uncorrectable ECC words: %d", st.ECCUncorrectable)
	}
	if st.FlipsInjected != 0 {
		t.Fatalf("flips injected with NopDisturber: %d", st.FlipsInjected)
	}
}
