package dram

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	good := DefaultDDR4Geometry()
	if err := good.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Geometry)
	}{
		{"zero banks", func(g *Geometry) { g.Banks = 0 }},
		{"zero rows", func(g *Geometry) { g.RowsPerBank = 0 }},
		{"zero subarray", func(g *Geometry) { g.SubarrayRows = 0 }},
		{"subarray larger than bank", func(g *Geometry) { g.SubarrayRows = g.RowsPerBank * 2 }},
		{"non-divisible subarray", func(g *Geometry) { g.SubarrayRows = 513 }},
		{"zero chips", func(g *Geometry) { g.Chips = 0 }},
		{"bad width", func(g *Geometry) { g.ChipWidth = 5 }},
		{"zero columns", func(g *Geometry) { g.ColumnsPerRow = 0 }},
	}
	for _, c := range cases {
		g := good
		c.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestGeometryDerivedSizes(t *testing.T) {
	g := DefaultDDR4Geometry()
	if got := g.RowBits(); got != 8*8*128 {
		t.Fatalf("RowBits = %d", got)
	}
	if got := g.RowWords(); got != 8*8*128/64 {
		t.Fatalf("RowWords = %d", got)
	}
	if got := g.ChipRowBits(); got != 8*128 {
		t.Fatalf("ChipRowBits = %d", got)
	}
	if got := g.Subarrays(); got != 4 {
		t.Fatalf("Subarrays = %d", got)
	}
}

func TestSubarrayBoundaries(t *testing.T) {
	g := DefaultDDR4Geometry() // 512-row subarrays
	if g.SubarrayOf(0) != 0 || g.SubarrayOf(511) != 0 || g.SubarrayOf(512) != 1 {
		t.Fatal("subarray indexing wrong")
	}
	if g.SameSubarray(511, 512) {
		t.Fatal("rows 511 and 512 must be in different subarrays")
	}
	if !g.SameSubarray(512, 1023) {
		t.Fatal("rows 512 and 1023 must share a subarray")
	}
}

func TestBitIndexRoundTrip(t *testing.T) {
	g := DefaultDDR4Geometry()
	if err := quick.Check(func(rc, rcol, rline uint16) bool {
		chip := int(rc) % g.Chips
		col := int(rcol) % g.ColumnsPerRow
		line := int(rline) % g.ChipWidth
		bit := g.BitIndex(chip, col, line)
		if bit < 0 || bit >= g.RowBits() {
			return false
		}
		c2, col2, l2 := g.BitLocation(bit)
		return c2 == chip && col2 == col && l2 == line
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBitIndexDense(t *testing.T) {
	g := Geometry{Banks: 1, RowsPerBank: 8, SubarrayRows: 8, Chips: 2, ChipWidth: 8, ColumnsPerRow: 4}
	seen := make(map[int]bool)
	for col := 0; col < g.ColumnsPerRow; col++ {
		for chip := 0; chip < g.Chips; chip++ {
			for line := 0; line < g.ChipWidth; line++ {
				b := g.BitIndex(chip, col, line)
				if seen[b] {
					t.Fatalf("duplicate bit index %d", b)
				}
				seen[b] = true
			}
		}
	}
	if len(seen) != g.RowBits() {
		t.Fatalf("bit indexes not dense: %d of %d", len(seen), g.RowBits())
	}
}

func TestPicosConversions(t *testing.T) {
	if PicosFromNs(34.5) != 34500 {
		t.Fatalf("PicosFromNs(34.5) = %d", PicosFromNs(34.5))
	}
	if PicosFromNs(-1.5) != -1500 {
		t.Fatalf("PicosFromNs(-1.5) = %d", PicosFromNs(-1.5))
	}
	if got := Picos(34500).Nanoseconds(); got != 34.5 {
		t.Fatalf("Nanoseconds = %v", got)
	}
}

func TestTimingValidate(t *testing.T) {
	for _, tm := range []Timing{DDR4Timing(), DDR3Timing()} {
		if err := tm.Validate(); err != nil {
			t.Fatalf("preset timing invalid: %v", err)
		}
	}
	bad := DDR4Timing()
	bad.TRC = bad.TRAS // < TRAS+TRP
	if err := bad.Validate(); err == nil {
		t.Fatal("expected tRC consistency error")
	}
	bad2 := DDR4Timing()
	bad2.TCK = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected tCK error")
	}
}

func TestHammerPeriod(t *testing.T) {
	tm := DDR4Timing()
	// Baseline: tRAS + tRP = 51 ns = tRC.
	if got := tm.HammerPeriod(tm.TRAS, tm.TRP); got != tm.TRC {
		t.Fatalf("baseline hammer period = %v, want tRC %v", got, tm.TRC)
	}
	// Longer on-time extends the period.
	if got := tm.HammerPeriod(PicosFromNs(154.5), tm.TRP); got != PicosFromNs(154.5)+tm.TRP {
		t.Fatalf("extended on-time period = %v", got)
	}
	// Sub-minimum requests clamp up to legal values.
	if got := tm.HammerPeriod(0, 0); got != tm.TRC {
		t.Fatalf("clamped period = %v, want %v", got, tm.TRC)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpNop: "NOP", OpAct: "ACT", OpPre: "PRE", OpPreAll: "PREA",
		OpRd: "RD", OpWr: "WR", OpRef: "REF",
	} {
		if op.String() != want {
			t.Fatalf("Op %d string = %q", op, op.String())
		}
	}
}
