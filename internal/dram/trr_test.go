package dram

import "testing"

func TestTRRSamplerTracksHotRow(t *testing.T) {
	cfg := TRRConfig{TableSize: 4, SampleProb: 1, Threshold: 100, Seed: 1}
	s := newTRRSampler(cfg, 0)
	for i := 0; i < 150; i++ {
		s.observe(42)
	}
	v := s.victims()
	if len(v) != 4 {
		t.Fatalf("victims = %v, want 4 neighbors of row 42", v)
	}
	want := map[int]bool{40: true, 41: true, 43: true, 44: true}
	for _, r := range v {
		if !want[r] {
			t.Fatalf("unexpected victim %d", r)
		}
	}
	// Counter cleared: no repeated victims without further activity.
	if v := s.victims(); len(v) != 0 {
		t.Fatalf("victims after clear = %v", v)
	}
}

func TestTRRSamplerBelowThresholdSilent(t *testing.T) {
	cfg := TRRConfig{TableSize: 4, SampleProb: 1, Threshold: 100, Seed: 1}
	s := newTRRSampler(cfg, 0)
	for i := 0; i < 99; i++ {
		s.observe(42)
	}
	if v := s.victims(); len(v) != 0 {
		t.Fatalf("victims = %v below threshold", v)
	}
}

func TestTRRSamplerFIFOEviction(t *testing.T) {
	cfg := TRRConfig{TableSize: 2, SampleProb: 1, Threshold: 10, Seed: 1}
	s := newTRRSampler(cfg, 0)
	for i := 0; i < 5; i++ {
		s.observe(1)
	}
	s.observe(2) // fills table: [1, 2]
	s.observe(3) // FIFO evicts row 1 (oldest): [2, 3]
	// Row 1's accumulated count is gone; re-tracking starts from 1.
	for i := 0; i < 9; i++ {
		s.observe(1) // first inserts (evicting 2), then counts up to 9
	}
	if v := s.victims(); len(v) != 0 {
		t.Fatalf("victims = %v; eviction should have reset row 1's count", v)
	}
	s.observe(1) // reaches the threshold of 10
	v := s.victims()
	want := map[int]bool{-1: true, 0: true, 2: true, 3: true}
	if len(v) != 4 {
		t.Fatalf("victims = %v, want the 4 neighbors of row 1", v)
	}
	for _, r := range v {
		if !want[r] {
			t.Fatalf("victims %v should be the neighbors of row 1 only", v)
		}
	}
}

func TestTRRSamplerChurnPreventsTracking(t *testing.T) {
	// The TRRespass weakness: with more hot rows than table entries,
	// FIFO churn keeps every count far below the threshold.
	cfg := TRRConfig{TableSize: 4, SampleProb: 1, Threshold: 100, Seed: 1}
	s := newTRRSampler(cfg, 0)
	for round := 0; round < 1000; round++ {
		for row := 10; row < 18; row++ { // 8 hot rows, 4 entries
			s.observe(row)
		}
	}
	if v := s.victims(); len(v) != 0 {
		t.Fatalf("sampler tracked through churn: victims %v", v)
	}
}

func TestTRRNeutralizedWithoutREF(t *testing.T) {
	// The paper's methodology: never issuing REF keeps TRR from ever
	// refreshing victims, so ledgers accumulate unbounded.
	trrCfg := TRRConfig{TableSize: 4, SampleProb: 1, Threshold: 8, Seed: 1}
	m, err := NewModule(ModuleConfig{
		Geometry: Geometry{Banks: 1, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   DDR4Timing(),
		TRR:      &trrCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tm := m.Timing()
	var now Picos
	const hammers = 50
	for i := 0; i < hammers; i++ {
		if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 9}, now); err != nil {
			t.Fatal(err)
		}
		now += tm.TRAS
		if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, now); err != nil {
			t.Fatal(err)
		}
		now += tm.TRP
	}
	if got := m.PeekLedger(0, 10).Dist[0].Count; got != hammers {
		t.Fatalf("without REF, ledger = %d, want %d (TRR must not fire)", got, hammers)
	}
	if m.Stats().TRRRefreshes != 0 {
		t.Fatal("TRR refreshed without REF")
	}
	// Now issue a REF: TRR fires and clears the victim ledgers.
	for i := 0; i < 10; i++ {
		if _, err := m.Exec(Command{Op: OpAct, Bank: 0, Row: 9}, now); err != nil {
			t.Fatal(err)
		}
		now += tm.TRAS
		if _, err := m.Exec(Command{Op: OpPre, Bank: 0}, now); err != nil {
			t.Fatal(err)
		}
		now += tm.TRP
	}
	if _, err := m.Exec(Command{Op: OpRef}, now); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TRRRefreshes == 0 {
		t.Fatal("TRR should refresh victims on REF")
	}
	if got := m.PeekLedger(0, 10).Total(); got != 0 {
		t.Fatalf("TRR refresh should clear victim ledger, got %d", got)
	}
}
