package softmc

import (
	"reflect"
	"testing"

	"rowhammer/internal/dram"
)

// burstModule builds a module with on-die ECC optionally enabled (the
// burst path must reproduce the per-command ECC encode/decode exactly).
func burstModule(t *testing.T, ecc bool) *dram.Module {
	t.Helper()
	m, err := dram.NewModule(dram.ModuleConfig{
		Geometry: dram.Geometry{Banks: 2, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   dram.DDR4Timing(),
		OnDieECC: ecc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// burstWords is an arbitrary column payload exercising all beat bits.
func burstWords(n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = 0xdeadbeefcafe0000 + uint64(i)*0x0101010101010101
	}
	return w
}

// TestBurstMatchesPerCommandSequence proves the KWrRow/KRdRow bulk
// path is bit-identical to the equivalent Wr/Rd+Wait command
// sequences: same read data, same end time, same module stats, and
// same stored rows.
func TestBurstMatchesPerCommandSequence(t *testing.T) {
	for _, ecc := range []bool{false, true} {
		words := burstWords(8)

		run := func(bulk bool) (*Result, dram.Stats, []uint64, error) {
			m := burstModule(t, ecc)
			tm := m.Timing()
			b := NewBuilder(tm.TCK)
			b.Act(0, 5).Wait(tm.TRCD)
			if bulk {
				b.WrRow(0, words, tm.TCCD)
			} else {
				for col, w := range words {
					b.Wr(0, col, w)
					b.Wait(tm.TCCD)
				}
			}
			b.Wait(tm.TRAS).Pre(0).Wait(tm.TRP)
			b.Act(0, 5).Wait(tm.TRCD)
			if bulk {
				b.RdRow(0, len(words), tm.TCCD)
			} else {
				for col := range words {
					b.Rd(0, col)
					b.Wait(tm.TCCD)
				}
			}
			b.Wait(tm.TRAS).Pre(0).Wait(tm.TRP)
			res, err := NewExecutor(m).Run(b.Program())
			return res, m.Stats(), m.PeekRow(0, 5), err
		}

		seqRes, seqStats, seqRow, err := run(false)
		if err != nil {
			t.Fatalf("ecc=%v per-command: %v", ecc, err)
		}
		bulkRes, bulkStats, bulkRow, err := run(true)
		if err != nil {
			t.Fatalf("ecc=%v bulk: %v", ecc, err)
		}
		if !reflect.DeepEqual(seqRes.Reads, bulkRes.Reads) {
			t.Errorf("ecc=%v reads diverged:\nseq:  %#x\nbulk: %#x", ecc, seqRes.Reads, bulkRes.Reads)
		}
		if seqRes.End != bulkRes.End {
			t.Errorf("ecc=%v end time diverged: seq %d, bulk %d", ecc, seqRes.End, bulkRes.End)
		}
		if seqStats != bulkStats {
			t.Errorf("ecc=%v stats diverged:\nseq:  %+v\nbulk: %+v", ecc, seqStats, bulkStats)
		}
		if !reflect.DeepEqual(seqRow, bulkRow) {
			t.Errorf("ecc=%v stored row diverged", ecc)
		}
	}
}

// TestBurstFollowOnTimingMatches proves the bank timestamps a burst
// leaves behind gate follow-on commands exactly like the per-command
// sequence: a PRE issued tWR-too-early after the burst's last write
// must fail identically.
func TestBurstFollowOnTimingMatches(t *testing.T) {
	words := burstWords(8)
	run := func(bulk bool) error {
		m := burstModule(t, false)
		tm := m.Timing()
		b := NewBuilder(tm.TCK)
		b.Act(0, 5).Wait(tm.TRCD)
		if bulk {
			b.WrRow(0, words, tm.TCCD)
		} else {
			for col, w := range words {
				b.Wr(0, col, w)
				b.Wait(tm.TCCD)
			}
		}
		// No tWR wait: PRE arrives too soon after the last write.
		b.Pre(0)
		_, err := NewExecutor(m).Run(b.Program())
		return err
	}
	seqErr, bulkErr := run(false), run(true)
	if seqErr == nil || bulkErr == nil {
		t.Fatalf("expected tWR violations, got seq=%v bulk=%v", seqErr, bulkErr)
	}
}

// TestBurstValidation exercises the bulk-path protocol checks.
func TestBurstValidation(t *testing.T) {
	m := burstModule(t, false)
	tm := m.Timing()

	// Write to a precharged bank.
	b := NewBuilder(tm.TCK)
	b.WrRow(0, burstWords(4), tm.TCCD)
	if _, err := NewExecutor(m).Run(b.Program()); err == nil {
		t.Error("burst write to precharged bank succeeded")
	}

	// Burst longer than the row.
	m2 := burstModule(t, false)
	b2 := NewBuilder(tm.TCK)
	b2.Act(0, 1).Wait(tm.TRCD).WrRow(0, burstWords(9), tm.TCCD)
	if _, err := NewExecutor(m2).Run(b2.Program()); err == nil {
		t.Error("burst beyond ColumnsPerRow succeeded")
	}

	// Read burst before tRCD.
	m3 := burstModule(t, false)
	b3 := NewBuilder(tm.TCK)
	b3.Act(0, 1).RdRow(0, 4, tm.TCCD)
	if _, err := NewExecutor(m3).Run(b3.Program()); err == nil {
		t.Error("burst read before tRCD succeeded")
	}

	// Zero-length bursts are no-ops.
	m4 := burstModule(t, false)
	b4 := NewBuilder(tm.TCK)
	b4.Act(0, 1).Wait(tm.TRCD).WrRow(0, nil, tm.TCCD).RdRow(0, 0, tm.TCCD).
		Wait(tm.TRAS).Pre(0).Wait(tm.TRP)
	res, err := NewExecutor(m4).Run(b4.Program())
	if err != nil {
		t.Fatalf("zero-length bursts: %v", err)
	}
	if len(res.Reads) != 0 {
		t.Fatalf("zero-length read burst returned %d beats", len(res.Reads))
	}
}
