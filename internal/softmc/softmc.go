// Package softmc implements a SoftMC-style programmable memory
// controller: test programs are sequences of DRAM commands with
// explicit inter-command delays at the controller's clock granularity
// (1.25 ns for the DDR4 infrastructure, 2.5 ns for DDR3), plus a
// hardware LOOP instruction that repeats a verified command block —
// the mechanism real SoftMC uses to hammer at line rate without host
// interaction.
//
// The executor drives a dram.Module command-by-command, so every
// timing and protocol rule is enforced exactly as on the FPGA.
package softmc

import (
	"fmt"

	"rowhammer/internal/dram"
)

// Kind discriminates program instructions.
type Kind uint8

// Instruction kinds.
const (
	// KCmd issues one DRAM command.
	KCmd Kind = iota
	// KWait advances time.
	KWait
	// KHammerLoop repeats ACT(row)…PRE cycles over a row list with
	// fixed on/off times — the SoftMC LOOP construct specialized to
	// hammering, executed analytically (cost independent of count).
	KHammerLoop
	// KLoop repeats an arbitrary instruction body Count times,
	// executed by unrolling — the general SoftMC LOOP. Use KHammerLoop
	// for high-count hammering; KLoop is for short structured
	// sequences (e.g. multi-READ per activation patterns).
	KLoop
	// KWrRow writes one beat per column of the open row, commands
	// spaced Delay apart — equivalent to len(Data) Wr+Wait pairs,
	// executed as one bulk device call.
	KWrRow
	// KRdRow reads Count beats from the open row starting at column 0,
	// commands spaced Delay apart — equivalent to Count Rd+Wait pairs.
	KRdRow
)

// Instr is one program instruction.
type Instr struct {
	Kind Kind

	// KCmd.
	Cmd dram.Command

	// KWait: delay before the next instruction.
	Delay dram.Picos

	// KHammerLoop.
	Bank   int
	Rows   []int
	Count  int64
	AggOn  dram.Picos
	AggOff dram.Picos

	// KLoop.
	Body []Instr

	// KWrRow: one beat per column (KRdRow uses Count + Delay).
	Data []uint64
}

// Program is an executable SoftMC program.
type Program struct {
	Instrs []Instr
}

// Builder assembles programs with convenience helpers. All times are
// rounded up to the controller clock (tCK).
type Builder struct {
	tck    dram.Picos
	instrs []Instr
	view   Program
}

// NewBuilder returns a Builder for a controller with the given clock
// granularity.
func NewBuilder(tck dram.Picos) *Builder {
	if tck <= 0 {
		panic("softmc: non-positive tCK")
	}
	return &Builder{tck: tck}
}

// Reset truncates the builder's program while keeping the instruction
// buffer's capacity, so hot loops can assemble fresh programs without
// reallocating. Any Program previously returned by View is
// invalidated.
func (b *Builder) Reset() *Builder {
	b.instrs = b.instrs[:0]
	return b
}

// roundUp rounds d up to the clock grid.
func (b *Builder) roundUp(d dram.Picos) dram.Picos {
	if d <= 0 {
		return 0
	}
	r := d % b.tck
	if r == 0 {
		return d
	}
	return d + b.tck - r
}

// Cmd appends a raw command.
func (b *Builder) Cmd(c dram.Command) *Builder {
	b.instrs = append(b.instrs, Instr{Kind: KCmd, Cmd: c})
	return b
}

// Act appends an ACT.
func (b *Builder) Act(bank, row int) *Builder {
	return b.Cmd(dram.Command{Op: dram.OpAct, Bank: bank, Row: row})
}

// Pre appends a PRE.
func (b *Builder) Pre(bank int) *Builder {
	return b.Cmd(dram.Command{Op: dram.OpPre, Bank: bank})
}

// PreAll appends a PREA.
func (b *Builder) PreAll() *Builder { return b.Cmd(dram.Command{Op: dram.OpPreAll}) }

// Rd appends a RD.
func (b *Builder) Rd(bank, col int) *Builder {
	return b.Cmd(dram.Command{Op: dram.OpRd, Bank: bank, Col: col})
}

// Wr appends a WR.
func (b *Builder) Wr(bank, col int, data uint64) *Builder {
	return b.Cmd(dram.Command{Op: dram.OpWr, Bank: bank, Col: col, Data: data})
}

// Ref appends a REF.
func (b *Builder) Ref() *Builder { return b.Cmd(dram.Command{Op: dram.OpRef}) }

// Wait appends a delay (rounded up to tCK).
func (b *Builder) Wait(d dram.Picos) *Builder {
	b.instrs = append(b.instrs, Instr{Kind: KWait, Delay: b.roundUp(d)})
	return b
}

// WaitNs appends a delay given in nanoseconds.
func (b *Builder) WaitNs(ns float64) *Builder { return b.Wait(dram.PicosFromNs(ns)) }

// Hammer appends a hardware hammer loop: count rounds of
// ACT(row)+wait(aggOn)+PRE+wait(aggOff) over rows.
func (b *Builder) Hammer(bank int, rows []int, count int64, aggOn, aggOff dram.Picos) *Builder {
	rcopy := make([]int, len(rows))
	copy(rcopy, rows)
	b.instrs = append(b.instrs, Instr{
		Kind: KHammerLoop, Bank: bank, Rows: rcopy, Count: count,
		AggOn: b.roundUp(aggOn), AggOff: b.roundUp(aggOff),
	})
	return b
}

// HammerShared is Hammer without the defensive row-list copy: the
// instruction aliases rows, which the caller must keep unchanged until
// the program has run. Arena-reusing measurement loops use it to stay
// allocation-free.
func (b *Builder) HammerShared(bank int, rows []int, count int64, aggOn, aggOff dram.Picos) *Builder {
	b.instrs = append(b.instrs, Instr{
		Kind: KHammerLoop, Bank: bank, Rows: rows, Count: count,
		AggOn: b.roundUp(aggOn), AggOff: b.roundUp(aggOff),
	})
	return b
}

// WrRow appends a bulk column-write burst to the open row of a bank:
// beat data[col] goes to column col, commands spaced ccd apart
// (rounded up to tCK). It is exactly equivalent to
//
//	for col := range data { b.Wr(bank, col, data[col]).Wait(ccd) }
//
// but executes as one instruction through the device's bulk port. The
// builder copies data.
func (b *Builder) WrRow(bank int, data []uint64, ccd dram.Picos) *Builder {
	dcopy := make([]uint64, len(data))
	copy(dcopy, data)
	b.instrs = append(b.instrs, Instr{Kind: KWrRow, Bank: bank, Data: dcopy, Delay: b.roundUp(ccd)})
	return b
}

// WrRowShared is WrRow without the defensive copy (the aliasing
// contract of HammerShared): data must stay unchanged until the
// program has run.
func (b *Builder) WrRowShared(bank int, data []uint64, ccd dram.Picos) *Builder {
	b.instrs = append(b.instrs, Instr{Kind: KWrRow, Bank: bank, Data: data, Delay: b.roundUp(ccd)})
	return b
}

// RdRow appends a bulk column-read burst: cols beats from columns
// 0..cols-1 of the open row, spaced ccd apart — exactly equivalent to
// the Rd+Wait pair sequence, as one instruction.
func (b *Builder) RdRow(bank, cols int, ccd dram.Picos) *Builder {
	b.instrs = append(b.instrs, Instr{Kind: KRdRow, Bank: bank, Count: int64(cols), Delay: b.roundUp(ccd)})
	return b
}

// maxLoopUnroll bounds total KLoop body executions per loop, a
// guard against runaway programs (use Hammer for high-count loops).
const maxLoopUnroll = 1 << 20

// Loop appends a general loop: body is assembled by fill on a nested
// builder and repeated count times.
func (b *Builder) Loop(count int64, fill func(*Builder)) *Builder {
	nested := NewBuilder(b.tck)
	fill(nested)
	b.instrs = append(b.instrs, Instr{Kind: KLoop, Count: count, Body: nested.Program().Instrs})
	return b
}

// Program finalizes the builder into a detached copy.
func (b *Builder) Program() *Program {
	p := &Program{Instrs: make([]Instr, len(b.instrs))}
	copy(p.Instrs, b.instrs)
	return p
}

// View returns the current program without copying: it aliases the
// builder's instruction buffer and is valid only until the next
// builder mutation (append or Reset). Use Program for a detached
// copy; View is for run-immediately hot loops.
func (b *Builder) View() *Program {
	b.view.Instrs = b.instrs
	return &b.view
}

// Device is the hardware surface the executor drives: one module's
// raw command interface plus the bulk-hammer fast path and its clock.
// *dram.Module implements Device; fault-injection wrappers
// (internal/inject) interpose on it to model a misbehaving FPGA link
// without the executor or the programs knowing.
type Device interface {
	Exec(cmd dram.Command, now dram.Picos) (uint64, error)
	HammerBulk(bank int, rows []int, count int64, aggOn, aggOff dram.Picos, start dram.Picos) (dram.Picos, error)
	// WrRowBulk/RdRowBulk execute a whole column burst (KWrRow/KRdRow)
	// in one call, bit-identical to the equivalent per-command
	// sequence; RdRowBulk appends the beats to dst.
	WrRowBulk(bank int, data []uint64, step, start dram.Picos) error
	RdRowBulk(bank, cols int, step, start dram.Picos, dst []uint64) ([]uint64, error)
	Timing() dram.Timing
}

// TraceEntry records one issued command for verification (Fig. 6).
type TraceEntry struct {
	At  dram.Picos
	Cmd dram.Command
}

// Result holds a program's outputs.
type Result struct {
	// Reads are the data beats returned by RD commands, in order.
	Reads []uint64
	// End is the time after the last instruction.
	End dram.Picos
	// Trace is populated when the executor traces.
	Trace []TraceEntry
}

// Executor runs programs against one device. Time persists across
// Run calls (like a powered-up board).
type Executor struct {
	mod   Device
	now   dram.Picos
	tck   dram.Picos
	trace bool
}

// NewExecutor returns an executor clocked at the module timing's tCK.
func NewExecutor(mod *dram.Module) *Executor { return NewExecutorOn(mod) }

// NewExecutorOn returns an executor driving an arbitrary Device —
// usually a fault-injection wrapper around a real module.
func NewExecutorOn(dev Device) *Executor {
	return &Executor{mod: dev, tck: dev.Timing().TCK}
}

// SetTrace enables or disables command tracing.
func (e *Executor) SetTrace(on bool) { e.trace = on }

// Now returns the executor's current time.
func (e *Executor) Now() dram.Picos { return e.now }

// AdvanceTo moves time forward to at least t.
func (e *Executor) AdvanceTo(t dram.Picos) {
	if t > e.now {
		e.now = t
	}
}

// Run executes a program. On error, execution stops at the offending
// instruction; the partial result is returned with the error.
func (e *Executor) Run(p *Program) (*Result, error) {
	res := &Result{}
	err := e.RunInto(p, res)
	return res, err
}

// RunInto executes a program into a caller-owned result, truncating
// and refilling its Reads/Trace buffers in place — the
// allocation-free variant of Run for hot measurement loops. On error,
// execution stops at the offending instruction; the partial result
// remains in res.
func (e *Executor) RunInto(p *Program, res *Result) error {
	res.Reads = res.Reads[:0]
	res.Trace = res.Trace[:0]
	justIssued := false
	err := e.runInstrs(p.Instrs, res, &justIssued, 0)
	res.End = e.now
	return err
}

// loopDepthLimit bounds KLoop nesting.
const loopDepthLimit = 8

// runInstrs executes an instruction sequence. justIssued tracks the
// tCK bus slot a command consumes: a Wait directly after a command
// expresses the full command-to-command distance, so that slot is
// credited against it.
func (e *Executor) runInstrs(instrs []Instr, res *Result, justIssued *bool, depth int) error {
	if depth > loopDepthLimit {
		return fmt.Errorf("softmc: loop nesting exceeds %d", loopDepthLimit)
	}
	for i := range instrs {
		in := &instrs[i]
		switch in.Kind {
		case KCmd:
			if e.trace {
				res.Trace = append(res.Trace, TraceEntry{At: e.now, Cmd: in.Cmd})
			}
			v, err := e.mod.Exec(in.Cmd, e.now)
			if err != nil {
				return fmt.Errorf("softmc: instr %d: %w", i, err)
			}
			if in.Cmd.Op == dram.OpRd {
				res.Reads = append(res.Reads, v)
			}
			e.now += e.tck
			*justIssued = true
		case KWait:
			d := in.Delay
			if *justIssued {
				d -= e.tck
			}
			if d > 0 {
				e.now += d
			}
			*justIssued = false
		case KHammerLoop:
			if e.trace {
				// Trace the loop header only; bodies are bulk.
				res.Trace = append(res.Trace, TraceEntry{At: e.now, Cmd: dram.Command{Op: dram.OpNop}})
			}
			end, err := e.mod.HammerBulk(in.Bank, in.Rows, in.Count, in.AggOn, in.AggOff, e.now)
			if err != nil {
				return fmt.Errorf("softmc: instr %d (hammer): %w", i, err)
			}
			e.now = end
			*justIssued = false
		case KWrRow:
			if len(in.Data) == 0 {
				continue
			}
			step := in.Delay
			if step < e.tck {
				step = e.tck
			}
			if e.trace {
				res.Trace = append(res.Trace, TraceEntry{At: e.now, Cmd: dram.Command{Op: dram.OpNop}})
			}
			if err := e.mod.WrRowBulk(in.Bank, in.Data, step, e.now); err != nil {
				return fmt.Errorf("softmc: instr %d (wrrow): %w", i, err)
			}
			e.now += dram.Picos(len(in.Data)) * step
			*justIssued = false
		case KRdRow:
			if in.Count == 0 {
				continue
			}
			step := in.Delay
			if step < e.tck {
				step = e.tck
			}
			if e.trace {
				res.Trace = append(res.Trace, TraceEntry{At: e.now, Cmd: dram.Command{Op: dram.OpNop}})
			}
			out, err := e.mod.RdRowBulk(in.Bank, int(in.Count), step, e.now, res.Reads)
			res.Reads = out
			if err != nil {
				return fmt.Errorf("softmc: instr %d (rdrow): %w", i, err)
			}
			e.now += dram.Picos(in.Count) * step
			*justIssued = false
		case KLoop:
			if in.Count*int64(len(in.Body)) > maxLoopUnroll {
				return fmt.Errorf("softmc: instr %d: loop unrolls to %d instructions (max %d); use Hammer for high-count loops",
					i, in.Count*int64(len(in.Body)), maxLoopUnroll)
			}
			for it := int64(0); it < in.Count; it++ {
				if err := e.runInstrs(in.Body, res, justIssued, depth+1); err != nil {
					return fmt.Errorf("softmc: instr %d iteration %d: %w", i, it, err)
				}
			}
		default:
			return fmt.Errorf("softmc: instr %d: unknown kind %d", i, in.Kind)
		}
	}
	return nil
}
