package softmc

import (
	"strings"
	"testing"

	"rowhammer/internal/dram"
)

func newTestModule(t *testing.T) *dram.Module {
	t.Helper()
	m, err := dram.NewModule(dram.ModuleConfig{
		Geometry: dram.Geometry{Banks: 2, RowsPerBank: 64, SubarrayRows: 64, Chips: 8, ChipWidth: 8, ColumnsPerRow: 8},
		Timing:   dram.DDR4Timing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuilderRoundsToClock(t *testing.T) {
	b := NewBuilder(dram.PicosFromNs(1.25))
	b.WaitNs(34.5) // 34.5/1.25 = 27.6 cycles → 28 cycles = 35 ns
	p := b.Program()
	if got := p.Instrs[0].Delay; got != dram.PicosFromNs(35) {
		t.Fatalf("rounded delay = %v ps, want 35000", got)
	}
	b2 := NewBuilder(dram.PicosFromNs(2.5))
	b2.WaitNs(35) // exactly 14 cycles
	if got := b2.Program().Instrs[0].Delay; got != dram.PicosFromNs(35) {
		t.Fatalf("exact delay altered: %v", got)
	}
}

func TestBuilderPanicsOnBadClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(0)
}

func TestProgramWriteReadRoundTrip(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	b := NewBuilder(tm.TCK)
	b.Act(0, 5).
		Wait(tm.TRCD).
		Wr(0, 3, 0x1234).
		Wait(tm.TRAS). // generous: covers tWR and tRAS
		Pre(0).
		Wait(tm.TRP).
		Act(0, 5).
		Wait(tm.TRCD).
		Rd(0, 3).
		Wait(tm.TRAS).
		Pre(0)
	res, err := NewExecutor(m).Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reads) != 1 || res.Reads[0] != 0x1234 {
		t.Fatalf("reads = %#v", res.Reads)
	}
}

func TestExecutorReportsTimingViolations(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	b := NewBuilder(tm.TCK)
	b.Act(0, 1).Pre(0) // PRE one cycle after ACT: tRAS violation
	_, err := NewExecutor(m).Run(b.Program())
	if err == nil || !strings.Contains(err.Error(), "tRAS") {
		t.Fatalf("expected tRAS violation, got %v", err)
	}
}

func TestHammerLoopAccumulatesLedger(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	b := NewBuilder(tm.TCK)
	const hammers = 1000
	b.Hammer(0, []int{9, 11}, hammers, tm.TRAS, tm.TRP)
	res, err := NewExecutor(m).Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	led := m.PeekLedger(0, 10)
	if led.Dist[0].Count != 2*hammers {
		t.Fatalf("victim count = %d", led.Dist[0].Count)
	}
	if res.End <= 0 {
		t.Fatal("no time elapsed")
	}
	// Hammer period: tRAS + tRP per activation, two rows.
	want := dram.Picos(hammers) * 2 * (tm.TRAS + tm.TRP)
	if res.End != want {
		t.Fatalf("end = %d, want %d", res.End, want)
	}
}

func TestHammerLoopErrorPropagates(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	b := NewBuilder(tm.TCK)
	b.Hammer(0, []int{999}, 10, tm.TRAS, tm.TRP)
	if _, err := NewExecutor(m).Run(b.Program()); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
}

func TestTraceRecordsCommands(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	b := NewBuilder(tm.TCK)
	b.Act(0, 1).Wait(tm.TRAS).Pre(0)
	ex := NewExecutor(m)
	ex.SetTrace(true)
	res, err := ex.Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	if res.Trace[0].Cmd.Op != dram.OpAct || res.Trace[1].Cmd.Op != dram.OpPre {
		t.Fatalf("trace ops wrong: %+v", res.Trace)
	}
	if got := res.Trace[1].At - res.Trace[0].At; got != tm.TRAS {
		t.Fatalf("ACT→PRE spacing = %v, want tRAS %v", got, tm.TRAS)
	}
}

func TestFig6TimingShapes(t *testing.T) {
	// The Fig. 6 methodology: Aggressor-On tests stretch ACT→PRE,
	// Aggressor-Off tests stretch PRE→ACT; verify the emitted command
	// spacings match the requested tAggOn/tAggOff exactly.
	m := newTestModule(t)
	tm := m.Timing()
	aggOn := dram.PicosFromNs(154.5)
	b := NewBuilder(tm.TCK)
	b.Act(0, 9).Wait(aggOn).Pre(0).Wait(tm.TRP).
		Act(0, 11).Wait(aggOn).Pre(0)
	ex := NewExecutor(m)
	ex.SetTrace(true)
	res, err := ex.Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	// trace: ACT, PRE, ACT, PRE
	if got := res.Trace[1].At - res.Trace[0].At; got != aggOn {
		t.Fatalf("tAggOn spacing = %v, want %v", got, aggOn)
	}
	if got := res.Trace[2].At - res.Trace[1].At; got != tm.TRP {
		t.Fatalf("tAggOff spacing = %v, want %v", got, tm.TRP)
	}
	// The module must have recorded exactly these times.
	led := m.PeekLedger(0, 10)
	if led.Dist[0].AvgOnNs() != 154.5 {
		t.Fatalf("recorded on-time %v", led.Dist[0].AvgOnNs())
	}
}

func TestExecutorTimePersistsAcrossRuns(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	ex := NewExecutor(m)
	b := NewBuilder(tm.TCK)
	b.Act(0, 1).Wait(tm.TRAS).Pre(0)
	if _, err := ex.Run(b.Program()); err != nil {
		t.Fatal(err)
	}
	t1 := ex.Now()
	// Second run reuses the same row: must respect tRP automatically
	// only if the program waits; check that time started from t1.
	b2 := NewBuilder(tm.TCK)
	b2.Wait(tm.TRP).Act(0, 1).Wait(tm.TRAS).Pre(0)
	res, err := ex.Run(b2.Program())
	if err != nil {
		t.Fatal(err)
	}
	if res.End <= t1 {
		t.Fatal("time did not persist across runs")
	}
}

func TestConsecutiveWaitsAdd(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	ex := NewExecutor(m)
	b := NewBuilder(tm.TCK)
	// 100 ns is not on the 1.5 ns grid: each wait rounds up to 100.5.
	b.Wait(dram.PicosFromNs(100)).Wait(dram.PicosFromNs(100))
	res, err := ex.Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if res.End != 2*dram.PicosFromNs(100.5) {
		t.Fatalf("end = %v, want 201 ns", res.End)
	}
}

func TestAdvanceTo(t *testing.T) {
	m := newTestModule(t)
	ex := NewExecutor(m)
	ex.AdvanceTo(5000)
	if ex.Now() != 5000 {
		t.Fatal("AdvanceTo failed")
	}
	ex.AdvanceTo(1000) // backwards: no-op
	if ex.Now() != 5000 {
		t.Fatal("AdvanceTo moved backwards")
	}
}

func TestGenericLoopUnrolls(t *testing.T) {
	// The multi-READ-per-activation pattern of Attack Improvement 3,
	// expressed as a general loop: ACT, 3×RD, PRE per iteration.
	m := newTestModule(t)
	tm := m.Timing()
	b := NewBuilder(tm.TCK)
	const iters = 50
	b.Loop(iters, func(body *Builder) {
		body.Act(0, 9).Wait(tm.TRCD)
		for col := 0; col < 3; col++ {
			body.Rd(0, col).Wait(tm.TCCD)
		}
		body.Wait(tm.TRAS). // covers tRTP and the tRAS remainder
					Pre(0).Wait(tm.TRP)
	})
	res, err := NewExecutor(m).Run(b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reads) != 3*iters {
		t.Fatalf("reads = %d, want %d", len(res.Reads), 3*iters)
	}
	if m.Stats().Acts != iters {
		t.Fatalf("acts = %d, want %d", m.Stats().Acts, iters)
	}
	// The victim row's ledger must reflect the stretched on-time:
	// ACT→PRE exceeds tRAS because of the reads.
	led := m.PeekLedger(0, 10)
	if led.Dist[0].Count != iters {
		t.Fatalf("ledger count %d", led.Dist[0].Count)
	}
	if led.Dist[0].AvgOnNs() <= tm.TRAS.Nanoseconds() {
		t.Fatalf("on-time %v not stretched beyond tRAS", led.Dist[0].AvgOnNs())
	}
}

func TestGenericLoopUnrollCap(t *testing.T) {
	m := newTestModule(t)
	b := NewBuilder(m.Timing().TCK)
	b.Loop(1<<22, func(body *Builder) { body.Wait(m.Timing().TRP) })
	if _, err := NewExecutor(m).Run(b.Program()); err == nil {
		t.Fatal("expected unroll-cap error")
	}
}

func TestLoopNestingLimitEnforced(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	b := NewBuilder(tm.TCK)
	// Nest one level past loopDepthLimit; each level is a 2× loop so
	// the unroll cap (2^9 instructions) is nowhere near tripped.
	var nest func(depth int, body *Builder)
	nest = func(depth int, body *Builder) {
		if depth == 0 {
			body.Wait(tm.TRP)
			return
		}
		body.Loop(2, func(inner *Builder) { nest(depth-1, inner) })
	}
	nest(loopDepthLimit+1, b)
	_, err := NewExecutor(m).Run(b.Program())
	if err == nil || !strings.Contains(err.Error(), "loop nesting exceeds") {
		t.Fatalf("expected nesting-limit error, got %v", err)
	}
	// At exactly the limit the program is legal.
	b2 := NewBuilder(tm.TCK)
	nest(loopDepthLimit, b2)
	if _, err := NewExecutor(m).Run(b2.Program()); err != nil {
		t.Fatalf("nesting at the limit should run, got %v", err)
	}
}

func TestUnrollCapErrorNamesTheCount(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	b := NewBuilder(tm.TCK)
	b.Loop(1<<21, func(body *Builder) { body.Wait(tm.TRP) })
	_, err := NewExecutor(m).Run(b.Program())
	if err == nil || !strings.Contains(err.Error(), "unrolls to") {
		t.Fatalf("expected unroll-cap error naming the count, got %v", err)
	}
	if !strings.Contains(err.Error(), "Hammer") {
		t.Fatalf("unroll-cap error should point at Hammer, got %v", err)
	}
}

func TestUnknownInstructionKindRejected(t *testing.T) {
	m := newTestModule(t)
	p := &Program{Instrs: []Instr{{Kind: Kind(99)}}}
	_, err := NewExecutor(m).Run(p)
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("expected unknown-kind error, got %v", err)
	}
	// Inside a loop body the same guard fires too.
	p2 := &Program{Instrs: []Instr{
		{Kind: KLoop, Count: 1, Body: []Instr{{Kind: Kind(77)}}},
	}}
	if _, err := NewExecutor(m).Run(p2); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("expected unknown-kind error in loop body, got %v", err)
	}
}

func TestGenericLoopErrorIncludesIteration(t *testing.T) {
	m := newTestModule(t)
	tm := m.Timing()
	b := NewBuilder(tm.TCK)
	// Second iteration violates tRC (no tRP wait between iterations).
	b.Loop(2, func(body *Builder) {
		body.Act(0, 1).Wait(tm.TRAS).Pre(0)
	})
	_, err := NewExecutor(m).Run(b.Program())
	if err == nil || !strings.Contains(err.Error(), "iteration 1") {
		t.Fatalf("expected iteration-1 error, got %v", err)
	}
}
