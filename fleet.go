package rowhammer

import (
	"context"
	"fmt"
	"io"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/inject"
	"rowhammer/internal/pool"
	"rowhammer/internal/rng"
)

// Fleet campaigns: the population-scale front door of the package.
// The paper's contribution is a 272-chip population study; RunCampaign
// reproduces that shape of work — many module instances characterized
// in parallel, checkpointed, and merged into order-independent fleet
// statistics.

// The campaign experiment kinds.
const (
	CampaignHCFirst = campaign.KindHCFirst
	CampaignBER     = campaign.KindBER
	CampaignWCDP    = campaign.KindWCDP
	CampaignSpatial = campaign.KindSpatial
)

// CampaignKinds lists the supported per-module experiment kinds.
func CampaignKinds() []string { return campaign.Kinds() }

// CampaignRecord is one module's checkpointed measurement record.
type CampaignRecord = campaign.Record

// CampaignSummary is the order-independent fleet aggregate.
type CampaignSummary = campaign.Summary

// CampaignCoverage is the explicit coverage accounting a degraded
// fleet summary carries (jobs completed / retried / quarantined).
type CampaignCoverage = campaign.Coverage

// FaultProfile configures the deterministic fault injector wrapped
// around the per-module measurement cores (chaos testing).
type FaultProfile = inject.Profile

// ParseFaultProfile parses the CLI fault-profile syntax, e.g. "chaos",
// "transient+seed=7", "dead=A/0,C/2". Empty or "none" yields nil.
func ParseFaultProfile(s string) (*FaultProfile, error) { return inject.Parse(s) }

// CampaignSpec declares a fleet characterization campaign.
type CampaignSpec struct {
	// Kind selects the per-module experiment (Campaign* constants);
	// empty selects CampaignHCFirst.
	Kind string
	// Mfrs lists manufacturer profiles; empty selects A, B, C, D.
	Mfrs []string
	// ModulesPerMfr is the fleet width per manufacturer (default 4).
	ModulesPerMfr int
	// Seed is the master seed; module seeds derive via ModuleSeed.
	Seed uint64
	// Scale bounds per-module work; zero selects DefaultScale().
	Scale Scale
	// Geometry of the modules; zero selects DefaultDDR4Geometry().
	Geometry Geometry
	// Temps is the temperature grid of BER campaigns; empty selects
	// StudyTemps().
	Temps []float64
	// Workers bounds the worker pool (< 1 selects NumCPU).
	Workers int
	// MaxRetries bounds per-job retries (default 1).
	MaxRetries int
	// JobTimeout bounds one job attempt (0 = no per-job deadline).
	JobTimeout time.Duration
	// RetryBackoff is the base of the exponential retry backoff with
	// deterministic jitter (0 = retry immediately).
	RetryBackoff time.Duration
	// BreakerThreshold quarantines a module after this many
	// consecutive failed attempts (0 = circuit breaker disabled).
	BreakerThreshold int
	// WatchdogFactor arms the stuck-job watchdog: a job attempt whose
	// runner neither returns nor heartbeats (CampaignHeartbeat) for
	// JobTimeout×WatchdogFactor is cancelled, and after a second such
	// window abandoned and requeued through the bounded retry path.
	// 0 disables the watchdog; non-zero requires JobTimeout > 0.
	WatchdogFactor int
}

// CampaignOptions controls checkpointing and progress reporting.
type CampaignOptions struct {
	// Checkpoint, when non-nil, receives one JSONL record per finished
	// job as it completes (the legacy v1 stream). Prefer Records with a
	// CampaignCheckpointWriter, which adds the v2 header and per-record
	// CRC trailers; when both are set, Records wins.
	Checkpoint io.Writer
	// Records, when non-nil, receives every finished record; use
	// CreateCampaignCheckpoint or AppendCampaignCheckpoint to stream
	// the crash-safe v2 checkpoint format.
	Records CampaignRecordWriter
	// Drain, when non-nil and closed (or signalled), stops dispatching
	// new jobs: in-flight jobs finish and are checkpointed, then
	// RunCampaign returns ErrCampaignDrained if work remains — the
	// graceful-shutdown half of the kill-anywhere guarantee.
	Drain <-chan struct{}
	// Resume holds records of a previous run (LoadCampaignCheckpoint);
	// their jobs are skipped.
	Resume map[string]CampaignRecord
	// Progress, when non-nil, is called after every finished job.
	Progress func(done, total int, rec CampaignRecord)
	// FaultProfile, when non-nil, wraps the measurement runner with
	// the deterministic fault injector — the chaos-testing knob.
	FaultProfile *FaultProfile
}

// CampaignResult is the outcome of a campaign run.
type CampaignResult struct {
	// Records maps job key → record, including resumed records.
	Records map[string]CampaignRecord
	// Summary is the order-independent fleet aggregate of the records;
	// interrupted+resumed campaigns produce bit-identical summaries to
	// uninterrupted ones.
	Summary CampaignSummary
	// Completed counts jobs run by this invocation, Skipped jobs
	// adopted from Resume, Failed jobs that exhausted retries.
	Completed, Skipped, Failed int
	// Retried counts jobs that needed more than one attempt;
	// Quarantined the failed jobs whose module tripped the breaker.
	Retried, Quarantined int
	// QuarantinedModules names the circuit-breaker-quarantined
	// modules ("mfr/index"), sorted.
	QuarantinedModules []string
}

// CampaignCheckpointWriter streams records in the crash-safe v2
// checkpoint format: a self-describing header line plus a CRC32C
// trailer on every record, each fsynced as it is written.
type CampaignCheckpointWriter = campaign.CheckpointWriter

// CampaignResumeReport describes what a checkpoint load found:
// adopted records, duplicate keys, quarantined corrupt lines (and the
// .corrupt sidecar holding them), and whether the final record was
// torn by a crash.
type CampaignResumeReport = campaign.ResumeReport

// CampaignCorruptLine is one quarantined checkpoint line.
type CampaignCorruptLine = campaign.CorruptLine

// CampaignRecordWriter receives finished records as they complete.
type CampaignRecordWriter = campaign.RecordWriter

// ErrCampaignDrained marks a run stopped by CampaignOptions.Drain with
// jobs still pending; the checkpoint is flushed and resumable.
var ErrCampaignDrained = campaign.ErrDrained

// ErrCampaignSpecMismatch marks a checkpoint that belongs to a
// campaign measuring something else (different kind, fleet, seed,
// temps, scale or geometry) — resuming it would silently mix results.
var ErrCampaignSpecMismatch = campaign.ErrSpecMismatch

// CampaignHeartbeat reports liveness from inside a long-running job so
// an armed watchdog (CampaignSpec.WatchdogFactor) does not abandon an
// attempt that is slow but making progress. No-op without a watchdog.
func CampaignHeartbeat(ctx context.Context) { campaign.Heartbeat(ctx) }

// lowerSpec resolves the public spec's Scale/Geometry defaults and
// lowers it to the engine spec, folding the measurement identity
// (scale + geometry) into the checkpoint fingerprint: those knobs
// change measured values without changing the job set, so a
// checkpoint taken at one scale must not resume into another. A
// malformed temperature grid (zero or negative step) is rejected here
// with a typed *TempStepError before it can reach a sweep loop.
func lowerSpec(spec CampaignSpec) (campaign.Spec, Scale, Geometry, error) {
	scale, geom := spec.Scale, spec.Geometry
	if err := FillMeasureDefaults(&scale, &geom, nil, nil); err != nil {
		return campaign.Spec{}, scale, geom, err
	}
	if err := ValidateTempGrid(spec.Temps); err != nil {
		return campaign.Spec{}, scale, geom, err
	}
	cs := campaign.Spec{
		Kind:             spec.Kind,
		Mfrs:             spec.Mfrs,
		ModulesPerMfr:    spec.ModulesPerMfr,
		Seed:             spec.Seed,
		Workers:          spec.Workers,
		MaxRetries:       spec.MaxRetries,
		JobTimeout:       spec.JobTimeout,
		RetryBackoff:     spec.RetryBackoff,
		BreakerThreshold: spec.BreakerThreshold,
		WatchdogFactor:   spec.WatchdogFactor,
		Temps:            spec.Temps,
		Fingerprint:      fmt.Sprintf("%016x", rng.HashString(fmt.Sprintf("scale:%+v|geom:%+v", scale, geom))),
	}
	// Normalize now so the checkpoint header hash is computed over the
	// same defaults the engine will run with; an invalid spec is passed
	// through untouched and rejected by Run with a proper error.
	if n, err := cs.Normalize(); err == nil {
		cs = n
	}
	return cs, scale, geom, nil
}

// CreateCampaignCheckpoint creates (or truncates) a v2 checkpoint file
// for the campaign; pass the writer as CampaignOptions.Records.
func CreateCampaignCheckpoint(path string, spec CampaignSpec) (*CampaignCheckpointWriter, error) {
	cs, _, _, err := lowerSpec(spec)
	if err != nil {
		return nil, err
	}
	return campaign.CreateCheckpoint(path, cs)
}

// AppendCampaignCheckpoint opens an existing checkpoint for appending
// after verifying it belongs to this campaign (ErrCampaignSpecMismatch
// otherwise); a file torn mid-record by a crash is newline-isolated so
// the fragment cannot corrupt the first new record.
func AppendCampaignCheckpoint(path string, spec CampaignSpec) (*CampaignCheckpointWriter, error) {
	cs, _, _, err := lowerSpec(spec)
	if err != nil {
		return nil, err
	}
	return campaign.AppendCheckpoint(path, cs)
}

// LoadCampaignCheckpointReport reads a v1 or v2 checkpoint for resume.
// With a non-nil spec the checkpoint's identity is verified
// (ErrCampaignSpecMismatch on a stale or foreign checkpoint). CRC
// verification quarantines corrupt interior lines to a .corrupt
// sidecar — reported, never silently adopted — and tolerates only a
// torn final record. A missing file yields an empty report.
func LoadCampaignCheckpointReport(path string, spec *CampaignSpec) (*CampaignResumeReport, error) {
	var opts campaign.ResumeOptions
	if spec != nil {
		cs, _, _, err := lowerSpec(*spec)
		if err != nil {
			return nil, err
		}
		opts.ExpectSpec = &cs
	}
	return campaign.LoadCheckpointReport(path, opts)
}

// CompactCampaignCheckpoint rewrites a checkpoint to one deduplicated
// record per job in canonical order, publishing the result atomically
// (the original is untouched if compaction fails anywhere). A nil spec
// trusts the file's own v2 header; a non-nil spec is verified against
// it, and is required to compact a headerless v1 file.
func CompactCampaignCheckpoint(path string, spec *CampaignSpec) (*CampaignResumeReport, error) {
	if spec == nil {
		return campaign.CompactCheckpointFile(path, nil)
	}
	cs, _, _, err := lowerSpec(*spec)
	if err != nil {
		return nil, err
	}
	return campaign.CompactCheckpointFile(path, &cs)
}

// LoadCampaignCheckpoint reads a JSONL checkpoint file for
// CampaignOptions.Resume. A missing file yields an empty map. It is
// the strict loader: any corrupt interior line is an error. Prefer
// LoadCampaignCheckpointReport, which verifies the campaign identity
// and quarantines corruption instead of failing.
func LoadCampaignCheckpoint(path string) (map[string]CampaignRecord, error) {
	return campaign.LoadCheckpointFile(path)
}

// WriteCampaignRecord appends one record to a JSONL checkpoint stream.
func WriteCampaignRecord(w io.Writer, rec CampaignRecord) error {
	return campaign.WriteRecord(w, rec)
}

// RunCampaign expands the spec into per-module jobs, runs them on a
// bounded worker pool with panic recovery and bounded retry, streams
// records to the checkpoint, and aggregates the fleet summary. On
// cancellation it returns the partial result together with ctx's
// error; the checkpoint can be resumed via CampaignOptions.Resume.
func RunCampaign(ctx context.Context, spec CampaignSpec, opts CampaignOptions) (*CampaignResult, error) {
	cspec, scale, geom, err := lowerSpec(spec)
	if err != nil {
		return nil, err
	}
	runner := moduleRunner(scale, geom)
	if opts.FaultProfile != nil {
		runner = inject.WrapRunner(runner, opts.FaultProfile)
	}
	res, err := campaign.Run(ctx, cspec, campaign.Options{
		Runner:     runner,
		Checkpoint: opts.Checkpoint,
		Records:    opts.Records,
		Done:       opts.Resume,
		Progress:   opts.Progress,
		Drain:      opts.Drain,
	})
	if res == nil {
		return nil, err
	}
	return &CampaignResult{
		Records:            res.Records,
		Summary:            campaign.Aggregate(res),
		Completed:          res.Completed,
		Skipped:            res.Skipped,
		Failed:             res.Failed,
		Retried:            res.Retried,
		Quarantined:        res.Quarantined,
		QuarantinedModules: res.QuarantinedModules(),
	}, err
}

// measureCores maps the built-in measurement campaign kinds to their
// per-module cores — the table-driven replacement of the old closed
// switch. Experiment campaigns (exp.* kinds) register their own
// runners through campaign.RegisterKind and exp.FleetRunner instead
// of extending this table.
var measureCores = map[string]func(*Tester, context.Context, MeasureScope) (PatternKind, map[string]float64, map[string][]float64, error){
	campaign.KindHCFirst: (*Tester).MeasureModuleHCFirst,
	campaign.KindBER:     (*Tester).MeasureModuleBER,
	campaign.KindWCDP:    (*Tester).MeasureModuleWCDP,
	campaign.KindSpatial: (*Tester).MeasureModuleSpatial,
}

// CampaignEngine lowers the public spec to the engine spec and the
// measurement runner that executes it — the seam that lets callers
// (rhfleet, rhserved) drive campaign.Run directly, side by side with
// experiment-generic runners from internal/exp.
func CampaignEngine(spec CampaignSpec) (campaign.Spec, campaign.Runner, error) {
	cs, scale, geom, err := lowerSpec(spec)
	if err != nil {
		return campaign.Spec{}, nil, err
	}
	return cs, moduleRunner(scale, geom), nil
}

// moduleRunner builds the campaign runner that measures one real
// module bench per job via the per-module measurement cores.
func moduleRunner(scale Scale, geom Geometry) campaign.Runner {
	return func(ctx context.Context, spec campaign.Spec, job campaign.Job) (campaign.Record, error) {
		profile := ProfileByName(job.Mfr)
		if profile == nil {
			return campaign.Record{}, fmt.Errorf("rowhammer: unknown manufacturer profile %q", job.Mfr)
		}
		seed := ModuleSeed(spec.Seed, job.Mfr, job.Module)
		b, err := NewBench(BenchConfig{Profile: profile, Seed: seed, Geometry: geom})
		if err != nil {
			return campaign.Record{}, err
		}
		t := NewTester(b)
		// Split the machine between the campaign pool and the
		// per-module row parallelism: when the campaign already runs
		// several modules concurrently, each module's measurement
		// cores get the remaining share of the CPUs. Results are
		// worker-count-invariant, so this is purely a scheduling
		// decision.
		campaignWorkers := spec.Workers
		if campaignWorkers < 1 {
			campaignWorkers = pool.DefaultWorkers()
		}
		inner := pool.DefaultWorkers() / campaignWorkers
		if inner < 1 {
			inner = 1
		}
		t.SetWorkers(inner)
		scope := MeasureScope{Scale: scale, Temps: spec.Temps}

		core, ok := measureCores[job.Kind]
		if !ok {
			return campaign.Record{}, fmt.Errorf("rowhammer: unknown campaign kind %q", job.Kind)
		}
		pat, metrics, series, err := core(t, ctx, scope)
		if err != nil {
			return campaign.Record{}, err
		}
		return campaign.Record{
			Seed:    seed,
			Pattern: pat.String(),
			Metrics: metrics,
			Series:  series,
		}, nil
	}
}
