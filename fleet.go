package rowhammer

import (
	"context"
	"fmt"
	"io"
	"time"

	"rowhammer/internal/campaign"
	"rowhammer/internal/inject"
	"rowhammer/internal/pool"
)

// Fleet campaigns: the population-scale front door of the package.
// The paper's contribution is a 272-chip population study; RunCampaign
// reproduces that shape of work — many module instances characterized
// in parallel, checkpointed, and merged into order-independent fleet
// statistics.

// The campaign experiment kinds.
const (
	CampaignHCFirst = campaign.KindHCFirst
	CampaignBER     = campaign.KindBER
	CampaignWCDP    = campaign.KindWCDP
	CampaignSpatial = campaign.KindSpatial
)

// CampaignKinds lists the supported per-module experiment kinds.
func CampaignKinds() []string { return campaign.Kinds() }

// CampaignRecord is one module's checkpointed measurement record.
type CampaignRecord = campaign.Record

// CampaignSummary is the order-independent fleet aggregate.
type CampaignSummary = campaign.Summary

// CampaignCoverage is the explicit coverage accounting a degraded
// fleet summary carries (jobs completed / retried / quarantined).
type CampaignCoverage = campaign.Coverage

// FaultProfile configures the deterministic fault injector wrapped
// around the per-module measurement cores (chaos testing).
type FaultProfile = inject.Profile

// ParseFaultProfile parses the CLI fault-profile syntax, e.g. "chaos",
// "transient+seed=7", "dead=A/0,C/2". Empty or "none" yields nil.
func ParseFaultProfile(s string) (*FaultProfile, error) { return inject.Parse(s) }

// CampaignSpec declares a fleet characterization campaign.
type CampaignSpec struct {
	// Kind selects the per-module experiment (Campaign* constants);
	// empty selects CampaignHCFirst.
	Kind string
	// Mfrs lists manufacturer profiles; empty selects A, B, C, D.
	Mfrs []string
	// ModulesPerMfr is the fleet width per manufacturer (default 4).
	ModulesPerMfr int
	// Seed is the master seed; module seeds derive via ModuleSeed.
	Seed uint64
	// Scale bounds per-module work; zero selects DefaultScale().
	Scale Scale
	// Geometry of the modules; zero selects DefaultDDR4Geometry().
	Geometry Geometry
	// Temps is the temperature grid of BER campaigns; empty selects
	// StudyTemps().
	Temps []float64
	// Workers bounds the worker pool (< 1 selects NumCPU).
	Workers int
	// MaxRetries bounds per-job retries (default 1).
	MaxRetries int
	// JobTimeout bounds one job attempt (0 = no per-job deadline).
	JobTimeout time.Duration
	// RetryBackoff is the base of the exponential retry backoff with
	// deterministic jitter (0 = retry immediately).
	RetryBackoff time.Duration
	// BreakerThreshold quarantines a module after this many
	// consecutive failed attempts (0 = circuit breaker disabled).
	BreakerThreshold int
}

// CampaignOptions controls checkpointing and progress reporting.
type CampaignOptions struct {
	// Checkpoint, when non-nil, receives one JSONL record per finished
	// job as it completes.
	Checkpoint io.Writer
	// Resume holds records of a previous run (LoadCampaignCheckpoint);
	// their jobs are skipped.
	Resume map[string]CampaignRecord
	// Progress, when non-nil, is called after every finished job.
	Progress func(done, total int, rec CampaignRecord)
	// FaultProfile, when non-nil, wraps the measurement runner with
	// the deterministic fault injector — the chaos-testing knob.
	FaultProfile *FaultProfile
}

// CampaignResult is the outcome of a campaign run.
type CampaignResult struct {
	// Records maps job key → record, including resumed records.
	Records map[string]CampaignRecord
	// Summary is the order-independent fleet aggregate of the records;
	// interrupted+resumed campaigns produce bit-identical summaries to
	// uninterrupted ones.
	Summary CampaignSummary
	// Completed counts jobs run by this invocation, Skipped jobs
	// adopted from Resume, Failed jobs that exhausted retries.
	Completed, Skipped, Failed int
	// Retried counts jobs that needed more than one attempt;
	// Quarantined the failed jobs whose module tripped the breaker.
	Retried, Quarantined int
	// QuarantinedModules names the circuit-breaker-quarantined
	// modules ("mfr/index"), sorted.
	QuarantinedModules []string
}

// LoadCampaignCheckpoint reads a JSONL checkpoint file for
// CampaignOptions.Resume. A missing file yields an empty map.
func LoadCampaignCheckpoint(path string) (map[string]CampaignRecord, error) {
	return campaign.LoadCheckpointFile(path)
}

// WriteCampaignRecord appends one record to a JSONL checkpoint stream.
func WriteCampaignRecord(w io.Writer, rec CampaignRecord) error {
	return campaign.WriteRecord(w, rec)
}

// RunCampaign expands the spec into per-module jobs, runs them on a
// bounded worker pool with panic recovery and bounded retry, streams
// records to the checkpoint, and aggregates the fleet summary. On
// cancellation it returns the partial result together with ctx's
// error; the checkpoint can be resumed via CampaignOptions.Resume.
func RunCampaign(ctx context.Context, spec CampaignSpec, opts CampaignOptions) (*CampaignResult, error) {
	scale := spec.Scale
	if scale == (Scale{}) {
		scale = DefaultScale()
	}
	geom := spec.Geometry
	if geom == (Geometry{}) {
		geom = DefaultDDR4Geometry()
	}
	cspec := campaign.Spec{
		Kind:             spec.Kind,
		Mfrs:             spec.Mfrs,
		ModulesPerMfr:    spec.ModulesPerMfr,
		Seed:             spec.Seed,
		Workers:          spec.Workers,
		MaxRetries:       spec.MaxRetries,
		JobTimeout:       spec.JobTimeout,
		RetryBackoff:     spec.RetryBackoff,
		BreakerThreshold: spec.BreakerThreshold,
		Temps:            spec.Temps,
	}
	runner := moduleRunner(scale, geom)
	if opts.FaultProfile != nil {
		runner = inject.WrapRunner(runner, opts.FaultProfile)
	}
	res, err := campaign.Run(ctx, cspec, campaign.Options{
		Runner:     runner,
		Checkpoint: opts.Checkpoint,
		Done:       opts.Resume,
		Progress:   opts.Progress,
	})
	if res == nil {
		return nil, err
	}
	return &CampaignResult{
		Records:            res.Records,
		Summary:            campaign.Aggregate(res),
		Completed:          res.Completed,
		Skipped:            res.Skipped,
		Failed:             res.Failed,
		Retried:            res.Retried,
		Quarantined:        res.Quarantined,
		QuarantinedModules: res.QuarantinedModules(),
	}, err
}

// moduleRunner builds the campaign runner that measures one real
// module bench per job via the per-module measurement cores.
func moduleRunner(scale Scale, geom Geometry) campaign.Runner {
	return func(ctx context.Context, spec campaign.Spec, job campaign.Job) (campaign.Record, error) {
		profile := ProfileByName(job.Mfr)
		if profile == nil {
			return campaign.Record{}, fmt.Errorf("rowhammer: unknown manufacturer profile %q", job.Mfr)
		}
		seed := ModuleSeed(spec.Seed, job.Mfr, job.Module)
		b, err := NewBench(BenchConfig{Profile: profile, Seed: seed, Geometry: geom})
		if err != nil {
			return campaign.Record{}, err
		}
		t := NewTester(b)
		// Split the machine between the campaign pool and the
		// per-module row parallelism: when the campaign already runs
		// several modules concurrently, each module's measurement
		// cores get the remaining share of the CPUs. Results are
		// worker-count-invariant, so this is purely a scheduling
		// decision.
		campaignWorkers := spec.Workers
		if campaignWorkers < 1 {
			campaignWorkers = pool.DefaultWorkers()
		}
		inner := pool.DefaultWorkers() / campaignWorkers
		if inner < 1 {
			inner = 1
		}
		t.SetWorkers(inner)
		scope := MeasureScope{Scale: scale, Temps: spec.Temps}

		var pat PatternKind
		var metrics map[string]float64
		var series map[string][]float64
		switch job.Kind {
		case campaign.KindHCFirst:
			pat, metrics, series, err = t.MeasureModuleHCFirst(ctx, scope)
		case campaign.KindBER:
			pat, metrics, series, err = t.MeasureModuleBER(ctx, scope)
		case campaign.KindWCDP:
			pat, metrics, series, err = t.MeasureModuleWCDP(ctx, scope)
		case campaign.KindSpatial:
			pat, metrics, series, err = t.MeasureModuleSpatial(ctx, scope)
		default:
			err = fmt.Errorf("rowhammer: unknown campaign kind %q", job.Kind)
		}
		if err != nil {
			return campaign.Record{}, err
		}
		return campaign.Record{
			Seed:    seed,
			Pattern: pat.String(),
			Metrics: metrics,
			Series:  series,
		}, nil
	}
}
