package rowhammer

import (
	"reflect"
	"testing"
)

func TestFillMeasureDefaults(t *testing.T) {
	custom := Scale{RowsPerRegion: 7, Regions: 1, Hammers: 10, MaxHammers: 20, Repetitions: 1, ModulesPerMfr: 1}
	customG := Geometry{Banks: 2, RowsPerBank: 64, SubarrayRows: 32, Chips: 4, ChipWidth: 16, ColumnsPerRow: 8}
	cases := []struct {
		name      string
		scale     Scale
		geom      Geometry
		seed      uint64
		temps     []float64
		wantScale Scale
		wantGeom  Geometry
		wantSeed  uint64
		wantTemps []float64
	}{
		{
			name:      "all zero fills every default",
			wantScale: DefaultScale(), wantGeom: DefaultDDR4Geometry(),
			wantSeed: DefaultSeed, wantTemps: StudyTemps(),
		},
		{
			name:  "explicit values survive",
			scale: custom, geom: customG, seed: 42, temps: []float64{60, 70},
			wantScale: custom, wantGeom: customG, wantSeed: 42, wantTemps: []float64{60, 70},
		},
		{
			name:  "partial zero fills only the zero knobs",
			scale: custom, seed: 0, temps: nil,
			wantScale: custom, wantGeom: DefaultDDR4Geometry(),
			wantSeed: DefaultSeed, wantTemps: StudyTemps(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scale, geom, seed, temps := tc.scale, tc.geom, tc.seed, tc.temps
			FillMeasureDefaults(&scale, &geom, &seed, &temps)
			if scale != tc.wantScale {
				t.Errorf("scale = %+v, want %+v", scale, tc.wantScale)
			}
			if geom != tc.wantGeom {
				t.Errorf("geom = %+v, want %+v", geom, tc.wantGeom)
			}
			if seed != tc.wantSeed {
				t.Errorf("seed = %d, want %d", seed, tc.wantSeed)
			}
			if !reflect.DeepEqual(temps, tc.wantTemps) {
				t.Errorf("temps = %v, want %v", temps, tc.wantTemps)
			}
		})
	}
}

func TestFillMeasureDefaultsNilKnobs(t *testing.T) {
	// Nil pointers must be skipped, not dereferenced.
	seed := uint64(0)
	FillMeasureDefaults(nil, nil, &seed, nil)
	if seed != DefaultSeed {
		t.Fatalf("seed = %d", seed)
	}
}

func TestNamedScale(t *testing.T) {
	for _, name := range []string{"tiny", "default", "paper"} {
		if _, _, ok := NamedScale(name); !ok {
			t.Errorf("NamedScale(%q) not ok", name)
		}
	}
	if _, _, ok := NamedScale("huge"); ok {
		t.Error("NamedScale accepted an unknown name")
	}
	if s, g, _ := NamedScale("default"); s != DefaultScale() || g != (Geometry{}) {
		t.Error("default scale mapping wrong")
	}
	if _, g, _ := NamedScale("tiny"); g != TinyGeometry() {
		t.Error("tiny geometry mapping wrong")
	}
}
