package rowhammer

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestFillMeasureDefaults(t *testing.T) {
	custom := Scale{RowsPerRegion: 7, Regions: 1, Hammers: 10, MaxHammers: 20, Repetitions: 1, ModulesPerMfr: 1}
	customG := Geometry{Banks: 2, RowsPerBank: 64, SubarrayRows: 32, Chips: 4, ChipWidth: 16, ColumnsPerRow: 8}
	cases := []struct {
		name      string
		scale     Scale
		geom      Geometry
		seed      uint64
		temps     []float64
		wantScale Scale
		wantGeom  Geometry
		wantSeed  uint64
		wantTemps []float64
	}{
		{
			name:      "all zero fills every default",
			wantScale: DefaultScale(), wantGeom: DefaultDDR4Geometry(),
			wantSeed: DefaultSeed, wantTemps: StudyTemps(),
		},
		{
			name:  "explicit values survive",
			scale: custom, geom: customG, seed: 42, temps: []float64{60, 70},
			wantScale: custom, wantGeom: customG, wantSeed: 42, wantTemps: []float64{60, 70},
		},
		{
			name:  "partial zero fills only the zero knobs",
			scale: custom, seed: 0, temps: nil,
			wantScale: custom, wantGeom: DefaultDDR4Geometry(),
			wantSeed: DefaultSeed, wantTemps: StudyTemps(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scale, geom, seed, temps := tc.scale, tc.geom, tc.seed, tc.temps
			if err := FillMeasureDefaults(&scale, &geom, &seed, &temps); err != nil {
				t.Fatal(err)
			}
			if scale != tc.wantScale {
				t.Errorf("scale = %+v, want %+v", scale, tc.wantScale)
			}
			if geom != tc.wantGeom {
				t.Errorf("geom = %+v, want %+v", geom, tc.wantGeom)
			}
			if seed != tc.wantSeed {
				t.Errorf("seed = %d, want %d", seed, tc.wantSeed)
			}
			if !reflect.DeepEqual(temps, tc.wantTemps) {
				t.Errorf("temps = %v, want %v", temps, tc.wantTemps)
			}
		})
	}
}

func TestFillMeasureDefaultsNilKnobs(t *testing.T) {
	// Nil pointers must be skipped, not dereferenced.
	seed := uint64(0)
	if err := FillMeasureDefaults(nil, nil, &seed, nil); err != nil {
		t.Fatal(err)
	}
	if seed != DefaultSeed {
		t.Fatalf("seed = %d", seed)
	}
}

func TestTempGridRejectsBadSteps(t *testing.T) {
	// Regression: a zero or negative step used to either loop forever
	// (lo < hi) or silently produce an empty sweep (lo > hi). Both now
	// fail with the typed *TempStepError.
	for _, tc := range []struct{ lo, hi, step float64 }{
		{50, 90, 0},  // would loop forever
		{50, 90, -5}, // would loop forever (t decreases away from hi)
		{90, 50, -5}, // would silently produce an empty sweep
		{90, 50, 5},  // inverted range: empty sweep
	} {
		_, err := TempGrid(tc.lo, tc.hi, tc.step)
		var tse *TempStepError
		if !errors.As(err, &tse) {
			t.Fatalf("TempGrid(%g, %g, %g) = %v, want *TempStepError", tc.lo, tc.hi, tc.step, err)
		}
	}
	got, err := TempGrid(50, 90, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, StudyTemps()) {
		t.Fatalf("TempGrid(50,90,5) = %v, want StudyTemps", got)
	}
	if one, err := TempGrid(70, 70, 5); err != nil || !reflect.DeepEqual(one, []float64{70}) {
		t.Fatalf("degenerate single-point grid = %v, %v", one, err)
	}
}

func TestFillMeasureDefaultsRejectsDescendingTemps(t *testing.T) {
	for _, temps := range [][]float64{
		{90, 80, 70},     // descending
		{50, 60, 60, 70}, // duplicate point (zero step)
		{50, 70, 60},     // non-monotonic
	} {
		in := append([]float64(nil), temps...)
		err := FillMeasureDefaults(nil, nil, nil, &in)
		var tse *TempStepError
		if !errors.As(err, &tse) {
			t.Fatalf("FillMeasureDefaults(temps=%v) = %v, want *TempStepError", temps, err)
		}
	}
}

func TestCampaignRejectsDescendingTemps(t *testing.T) {
	// The typed error must surface before any job runs — RunCampaign,
	// the engine lowering, and the checkpoint helpers all reject it.
	spec := CampaignSpec{Kind: CampaignBER, Mfrs: []string{"A"}, ModulesPerMfr: 1,
		Scale: TinyScale(), Geometry: TinyGeometry(), Temps: []float64{90, 70, 50}}
	var tse *TempStepError
	if _, err := RunCampaign(context.Background(), spec, CampaignOptions{}); !errors.As(err, &tse) {
		t.Fatalf("RunCampaign = %v, want *TempStepError", err)
	}
	if _, _, err := CampaignEngine(spec); !errors.As(err, &tse) {
		t.Fatalf("CampaignEngine = %v, want *TempStepError", err)
	}
	if _, err := CreateCampaignCheckpoint("/nonexistent/nope.jsonl", spec); !errors.As(err, &tse) {
		t.Fatalf("CreateCampaignCheckpoint = %v, want *TempStepError", err)
	}
}

func TestNamedScale(t *testing.T) {
	for _, name := range []string{"tiny", "default", "paper"} {
		if _, _, ok := NamedScale(name); !ok {
			t.Errorf("NamedScale(%q) not ok", name)
		}
	}
	if _, _, ok := NamedScale("huge"); ok {
		t.Error("NamedScale accepted an unknown name")
	}
	if s, g, _ := NamedScale("default"); s != DefaultScale() || g != (Geometry{}) {
		t.Error("default scale mapping wrong")
	}
	if _, g, _ := NamedScale("tiny"); g != TinyGeometry() {
		t.Error("tiny geometry mapping wrong")
	}
}
