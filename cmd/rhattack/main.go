// Command rhattack demonstrates the paper's three attack improvements
// (§8.1) end to end against one simulated module:
//
//  1. temperature-targeted victim selection,
//  2. a temperature-triggered arming stage, and
//  3. extended aggressor on-time via extra READs.
//
// Usage:
//
//	rhattack -mfr A -seed 7 -temp 80
package main

import (
	"flag"
	"fmt"
	"os"

	rh "rowhammer"
	"rowhammer/internal/attack"
)

func main() {
	var (
		mfr  = flag.String("mfr", "A", "manufacturer profile (A-D)")
		seed = flag.Uint64("seed", 7, "module seed")
		temp = flag.Float64("temp", 80, "attack temperature (°C)")
	)
	flag.Parse()

	p := rh.ProfileByName(*mfr)
	if p == nil {
		fmt.Fprintf(os.Stderr, "rhattack: unknown manufacturer %q\n", *mfr)
		os.Exit(2)
	}
	bench, err := rh.NewBench(rh.BenchConfig{
		Profile: p,
		Seed:    *seed,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 1024, SubarrayRows: 512,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
		},
	})
	if err != nil {
		fatal(err)
	}
	tester := rh.NewTester(bench)

	// Stage 0: reconnaissance — recover the internal row mapping, then
	// profile candidate rows across temperatures.
	fmt.Println("[0] recovering internal row mapping…")
	scheme, err := tester.RecoverMapping(0, []int{40, 52, 100}, 16)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("    mapping scheme: %s\n", scheme.Name())

	candidates := []int{60, 160, 260, 360, 460, 560, 660, 760}
	fmt.Printf("[1] profiling %d candidate rows at 50 °C, %.0f °C and 90 °C…\n", len(candidates), *temp)
	planner, err := attack.BuildPlanner(tester, 0, candidates, []float64{50, *temp, 90})
	if err != nil {
		fatal(err)
	}
	best, bestHC, err := planner.BestRowAt(*temp)
	if err != nil {
		fatal(err)
	}
	median, err := planner.MedianRowAt(*temp)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("    informed victim: row %d (HCfirst %d at %.0f °C; median row needs %d)\n",
		best.Row, bestHC, *temp, median)

	// Stage 2: plant a temperature trigger.
	fmt.Println("[2] searching for a temperature-trigger cell…")
	sweep, err := tester.TemperatureSweep(rh.TempSweepConfig{
		Bank: 0, Victims: candidates, Hammers: 300_000, Pattern: rh.PatCheckered,
	})
	if err != nil {
		fatal(err)
	}
	trig, err := attack.FindTrigger(sweep, attack.AtOrAbove, 70, 0, 300_000, rh.PatCheckered)
	if err != nil {
		fmt.Printf("    no trigger cell in this module (%v); proceeding unconditionally\n", err)
	} else {
		fmt.Printf("    trigger cell: row %d bit %d (fires at ≥70 °C)\n", trig.Row, trig.Bit)
	}

	// Stage 3: heat the chip (the attacker's IoT device warms up), arm,
	// and fire with extended on-time.
	fmt.Printf("[3] chip reaches %.0f °C…\n", *temp)
	if err := bench.SetTemperature(*temp); err != nil {
		fatal(err)
	}
	if trig != nil {
		armed, err := trig.Probe(tester, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("    trigger probe: armed=%v\n", armed)
		if !armed {
			fmt.Println("    trigger dormant; attack aborted")
			return
		}
	}

	tm := bench.Timing()
	reads := 15
	onNs := attack.OnTimeWithReads(tm, reads).Nanoseconds()
	// Small margin over the profiled HCfirst; the extended on-time
	// reduces the true requirement further (Obsv. 8: ≈−25% at this
	// on-time).
	hammers := bestHC * 11 / 10
	fmt.Printf("[4] firing: double-sided, %d READs/activation (tAggOn %.1f ns), %d hammers…\n",
		reads, onNs, hammers)
	res, err := tester.Hammer(rh.HammerConfig{
		Bank: 0, VictimPhys: best.Row, Hammers: hammers,
		AggOnNs: onNs, Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("    result: %d bit flips in the victim row (%.1f ms of hammering)\n",
		res.Victim.Count(), float64(res.DurationP)/1e9)
	if res.Victim.Count() > 0 {
		fmt.Println("    attack succeeded")
	} else {
		fmt.Println("    no flips (try a different seed or temperature)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhattack:", err)
	os.Exit(1)
}
