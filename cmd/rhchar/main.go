// Command rhchar runs the RowHammer characterization experiments that
// regenerate the paper's tables and figures.
//
// Usage:
//
//	rhchar -list
//	rhchar -exp fig11
//	rhchar -exp all -scale default
//	rhchar -exp fig3 -scale paper -seed 42 -workers 8 -timeout 10m
//	rhchar -exp fig5 -format json | jq '.rows[].values'
//	rhchar -exp fig5 -format json -out fig5.artifact.json
//
// Every experiment computes a structured artifact first and renders
// the text report from it, so -format json and -format tsv expose the
// exact numbers behind the text tables; -out publishes the bytes
// atomically (readers never see a torn file).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	rh "rowhammer"
	"rowhammer/internal/durable"
	"rowhammer/internal/exp"
	"rowhammer/internal/profiling"
)

// stopProfiles finishes any active pprof profiles; exit routes every
// termination through it because os.Exit skips deferred calls.
var stopProfiles = func() {}

func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run (or \"all\")")
		scale   = flag.String("scale", "default", "measurement scale: tiny, default, paper")
		seed    = flag.Uint64("seed", rh.DefaultSeed, "master seed for module instances")
		format  = flag.String("format", "text", "output format: text (paper report), json (artifact), tsv (artifact)")
		outPath = flag.String("out", "", "publish the output atomically to this file instead of stdout")
		list    = flag.Bool("list", false, "list available experiments")
		workers = flag.Int("workers", 0, "max concurrent manufacturers (0 = one per CPU)")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhchar: %v\n", err)
		os.Exit(2)
	}
	stopProfiles = stopProf
	defer stopProfiles()

	// Reject nonsense before it reaches the worker pool: a negative
	// worker count or timeout is a usage error, not undefined behavior.
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "rhchar: -workers must be >= 0 (0 = one per CPU), got %d\n", *workers)
		exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "rhchar: -timeout must be >= 0 (0 = no limit), got %v\n", *timeout)
		exit(2)
	}
	if *format != "text" && *format != "json" && *format != "tsv" {
		fmt.Fprintf(os.Stderr, "rhchar: unknown format %q (text, json, tsv)\n", *format)
		exit(2)
	}

	if *list || *expID == "" {
		fmt.Println("Available experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-8s %s (%s, artifact schema v%d)\n", e.ID, e.Title, e.Section, e.Schema)
		}
		if *expID == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	cfg := exp.Config{Seed: *seed, Workers: *workers}
	sc, geom, ok := rh.NamedScale(*scale)
	if !ok {
		fmt.Fprintf(os.Stderr, "rhchar: unknown scale %q (tiny, default, paper)\n", *scale)
		exit(2)
	}
	cfg.Scale, cfg.Geometry = sc, geom

	// SIGTERM is what fleet schedulers and `timeout(1)` send; treat it
	// like Ctrl-C so a scheduled run cleans up instead of dying dirty.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The payload (rendered text or artifact bytes) goes to stdout, or
	// into a buffer published atomically via -out. Decorative banners
	// and timings stay on stdout only in interactive text mode; with a
	// machine format or -out they move to stderr so the payload stays
	// clean.
	var outBuf bytes.Buffer
	var payload io.Writer = os.Stdout
	banner := io.Writer(os.Stdout)
	if *outPath != "" {
		payload = &outBuf
	}
	if *outPath != "" || *format != "text" {
		banner = os.Stderr
	}

	run := func(e exp.Experiment) {
		fmt.Fprintf(banner, "=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		a, err := e.ComputeAll(ctx, cfg)
		if err == nil {
			switch *format {
			case "text":
				err = e.Render(payload, a)
			case "json":
				var buf []byte
				if buf, err = a.Encode(); err == nil {
					_, err = payload.Write(buf)
				}
			case "tsv":
				_, err = payload.Write(a.EncodeTSV())
			}
		}
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "rhchar: %s aborted: %v\n", e.ID, ctx.Err())
			} else {
				fmt.Fprintf(os.Stderr, "rhchar: %s: %v\n", e.ID, err)
			}
			exit(1)
		}
		fmt.Fprintf(banner, "(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *expID == "all" {
		for _, e := range exp.All() {
			run(e)
		}
	} else {
		e := exp.ByID(*expID)
		if e == nil {
			fmt.Fprintf(os.Stderr, "rhchar: unknown experiment %q (use -list)\n", *expID)
			exit(2)
		}
		run(*e)
	}
	if *outPath != "" {
		if err := durable.AtomicWriteFile(*outPath, outBuf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rhchar: publishing %s: %v\n", *outPath, err)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "rhchar: published %s (%d bytes)\n", *outPath, outBuf.Len())
	}
}
