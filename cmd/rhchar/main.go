// Command rhchar runs the RowHammer characterization experiments that
// regenerate the paper's tables and figures.
//
// Usage:
//
//	rhchar -list
//	rhchar -exp fig11
//	rhchar -exp all -scale default
//	rhchar -exp fig3 -scale paper -seed 42 -workers 8 -timeout 10m
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	rh "rowhammer"
	"rowhammer/internal/exp"
	"rowhammer/internal/profiling"
)

// stopProfiles finishes any active pprof profiles; exit routes every
// termination through it because os.Exit skips deferred calls.
var stopProfiles = func() {}

func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run (or \"all\")")
		scale   = flag.String("scale", "default", "measurement scale: tiny, default, paper")
		seed    = flag.Uint64("seed", 0x5eed, "master seed for module instances")
		list    = flag.Bool("list", false, "list available experiments")
		workers = flag.Int("workers", 0, "max concurrent manufacturers (0 = one per CPU)")
		timeout = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhchar: %v\n", err)
		os.Exit(2)
	}
	stopProfiles = stopProf
	defer stopProfiles()

	// Reject nonsense before it reaches the worker pool: a negative
	// worker count or timeout is a usage error, not undefined behavior.
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "rhchar: -workers must be >= 0 (0 = one per CPU), got %d\n", *workers)
		exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "rhchar: -timeout must be >= 0 (0 = no limit), got %v\n", *timeout)
		exit(2)
	}

	if *list || *expID == "" {
		fmt.Println("Available experiments:")
		for _, e := range exp.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	cfg := exp.Config{Seed: *seed, Out: os.Stdout, Workers: *workers}
	switch *scale {
	case "tiny":
		cfg.Scale = rh.Scale{RowsPerRegion: 10, Regions: 2, Hammers: 150_000, MaxHammers: 512_000, Repetitions: 1, ModulesPerMfr: 2}
		cfg.Geometry = rh.Geometry{Banks: 1, RowsPerBank: 512, SubarrayRows: 128, Chips: 8, ChipWidth: 8, ColumnsPerRow: 32}
	case "default":
		cfg.Scale = rh.DefaultScale()
	case "paper":
		cfg.Scale = rh.PaperScale()
		cfg.Geometry = rh.Geometry{Banks: 4, RowsPerBank: 65536, SubarrayRows: 512, Chips: 8, ChipWidth: 8, ColumnsPerRow: 128}
	default:
		fmt.Fprintf(os.Stderr, "rhchar: unknown scale %q\n", *scale)
		exit(2)
	}

	// SIGTERM is what fleet schedulers and `timeout(1)` send; treat it
	// like Ctrl-C so a scheduled run cleans up instead of dying dirty.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	run := func(e exp.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(ctx, cfg); err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "rhchar: %s aborted: %v\n", e.ID, ctx.Err())
			} else {
				fmt.Fprintf(os.Stderr, "rhchar: %s: %v\n", e.ID, err)
			}
			exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *expID == "all" {
		for _, e := range exp.All() {
			run(e)
		}
		return
	}
	e := exp.ByID(*expID)
	if e == nil {
		fmt.Fprintf(os.Stderr, "rhchar: unknown experiment %q (use -list)\n", *expID)
		exit(2)
	}
	run(*e)
}
