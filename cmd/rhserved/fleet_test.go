//go:build unix

// Fleet placement drill: builds the real rhserved and rhfleet
// binaries, registers three `rhfleet -worker` processes with the
// daemon's placement layer — one of them crippled by deterministic
// network latency on its lease client — submits a sharded campaign
// over HTTP, SIGKILLs a healthy worker mid-run, and requires the
// scheduler to rebalance off the straggler, reassign the dead
// worker's shards, and publish an artifact byte-identical to a
// single-process rhfleet run. `make chaos-fleet` runs exactly this.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"
)

var (
	fleetBuildOnce sync.Once
	rhfleetBin     string
	fleetBuildErr  error
)

// rhfleetBinary builds the real rhfleet once per test run — the drill
// exercises the shipped worker, not an in-process approximation.
func rhfleetBinary(t *testing.T) string {
	t.Helper()
	fleetBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rhserved-fleet-*")
		if err != nil {
			fleetBuildErr = err
			return
		}
		rhfleetBin = filepath.Join(dir, "rhfleet")
		if out, err := exec.Command("go", "build", "-o", rhfleetBin, "../rhfleet").CombinedOutput(); err != nil {
			fleetBuildErr = fmt.Errorf("go build rhfleet: %v\n%s", err, out)
		}
	})
	if fleetBuildErr != nil {
		t.Fatal(fleetBuildErr)
	}
	return rhfleetBin
}

// lockedBuf is a goroutine-safe buffer for child-process output.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

type fleetWorker struct {
	id   string
	cmd  *exec.Cmd
	logs *lockedBuf
}

// startFleetWorker launches `rhfleet -worker` against the daemon's
// placement layer. Extra args ride along (the straggler's -net-chaos).
func startFleetWorker(t *testing.T, base, id string, extra ...string) *fleetWorker {
	t.Helper()
	args := append([]string{"-worker", "-lease-url", base, "-worker-id", id, "-lease-ttl", "2s", "-quiet"}, extra...)
	cmd := exec.Command(rhfleetBinary(t), args...)
	logs := &lockedBuf{}
	cmd.Stdout, cmd.Stderr = logs, logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &fleetWorker{id: id, cmd: cmd, logs: logs}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	return w
}

// waitWorkersAlive polls GET /v1/workers until n registrations are
// alive.
func waitWorkersAlive(t *testing.T, d *daemon, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var views []struct {
			ID    string `json:"id"`
			Alive bool   `json:"alive"`
		}
		getJSON(t, d.base+"/v1/workers", &views)
		alive := 0
		for _, v := range views {
			if v.Alive {
				alive++
			}
		}
		if alive >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d/%d fleet workers alive; daemon log:\n%s", alive, n, d.log())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetChaosDrill is the end-to-end placement-layer drill. A
// campaign submitted with "shards": 8 must complete entirely on the
// three registered workers (the daemon spawns nothing), survive one
// worker SIGKILLed mid-run and one straggler slowed by 400ms of
// injected latency per lease call, and still publish the summary
// byte-identical to a single-process rhfleet run of the same
// campaign.
func TestFleetChaosDrill(t *testing.T) {
	// Reference bytes: the same campaign, one process, no daemon.
	refDir := t.TempDir()
	refSum := filepath.Join(refDir, "summary.json")
	ref := exec.Command(rhfleetBinary(t),
		"-mfrs", "A,B,C,D", "-modules", "4", "-exp", "hcfirst", "-scale", "tiny", "-seed", "7",
		"-workers", "2", "-quiet",
		"-out", filepath.Join(refDir, "ref.jsonl"), "-summary", refSum)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference rhfleet run: %v\n%s", err, out)
	}
	want, err := os.ReadFile(refSum)
	if err != nil {
		t.Fatal(err)
	}

	d := startDaemon(t, t.TempDir(), "-lease-ttl", "2s")
	w1 := startFleetWorker(t, d.base, "w1")
	startFleetWorker(t, d.base, "w2")
	startFleetWorker(t, d.base, "w3", "-net-chaos", "latency=1:400ms")
	waitWorkersAlive(t, d, 3)

	st := submit(t, d, `{"kind":"hcfirst","mfrs":["A","B","C","D"],"modules_per_mfr":4,"scale":"tiny","seed":7,"workers":2,"shards":8}`)

	// Wait until w1 demonstrably holds a shard lease — it is mid-shard
	// right now — then SIGKILL it without any warning: the held lease
	// must lapse and be reassigned, and w1's queued placements must be
	// re-placed onto the survivors.
	killDeadline := time.Now().Add(time.Minute)
	for {
		var leases []struct {
			Held  bool   `json:"held"`
			Owner string `json:"owner"`
		}
		getJSON(t, d.base+"/v1/leases", &leases)
		holding := false
		for _, l := range leases {
			if l.Held && l.Owner == w1.id {
				holding = true
				break
			}
		}
		if holding {
			break
		}
		var cur status
		getJSON(t, d.base+"/v1/campaigns/"+st.ID, &cur)
		if cur.State == "done" || cur.State == "failed" || time.Now().After(killDeadline) {
			t.Fatalf("campaign reached %q before %s ever held a lease; daemon log:\n%s", cur.State, w1.id, d.log())
		}
		time.Sleep(2 * time.Millisecond)
	}
	w1.cmd.Process.Kill()
	w1.cmd.Wait()
	t.Logf("SIGKILLed worker %s while it held a shard lease", w1.id)

	final := pollDone(t, d, st.ID)
	log := d.log()

	// The manager fanned out to the fleet rather than running anything
	// in process.
	if !regexp.MustCompile(`fanning \d+ shard\(s\) out across`).MatchString(log) {
		t.Fatalf("daemon never fanned out to the fleet; log:\n%s", log)
	}
	// The dead worker's shards moved: either a held lease lapsed and
	// the shard was reassigned to a fresh generation, or a never-
	// started placement was re-placed onto a live worker.
	if !regexp.MustCompile(`reassigning|re-placing`).MatchString(log) {
		t.Fatalf("no reassignment after SIGKILLing %s; log:\n%s", w1.id, log)
	}
	// The scheduler rebalanced queued work off the straggler.
	if !regexp.MustCompile(`rebalance`).MatchString(log) {
		t.Fatalf("scheduler never rebalanced off the slow worker; log:\n%s", log)
	}

	got := getBytes(t, d.base+"/v1/artifacts/"+final.ArtifactID)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet artifact differs from single-process summary (%d vs %d bytes)\ndaemon log:\n%s",
			len(got), len(want), log)
	}
}

// TestFleetWorkersEndpointShape pins the operator-facing JSON of
// GET /v1/workers and GET /v1/stats against a live daemon with one
// registered worker — the wire schema EXPERIMENTS.md documents.
func TestFleetWorkersEndpointShape(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "-lease-ttl", "2s")
	startFleetWorker(t, d.base, "shape-w")
	waitWorkersAlive(t, d, 1)

	resp, err := http.Get(d.base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 {
		t.Fatalf("got %d workers, want 1", len(views))
	}
	for _, key := range []string{"id", "token", "alive", "slots", "seq", "ttl_ms"} {
		if _, ok := views[0][key]; !ok {
			t.Fatalf("GET /v1/workers entry missing %q: %v", key, views[0])
		}
	}

	var stats map[string]any
	if code := getJSON(t, d.base+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d", code)
	}
	for _, key := range []string{"lease_acquires", "lease_beats", "fenced_rejections", "worker_beats", "workers_registered"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("GET /v1/stats missing %q: %v", key, stats)
		}
	}
	if stats["workers_registered"].(float64) < 1 {
		t.Fatalf("workers_registered = %v, want >= 1", stats["workers_registered"])
	}
}
