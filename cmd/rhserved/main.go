// Command rhserved is the campaign-as-a-service daemon: a
// long-running HTTP server that accepts characterization campaign
// specs, runs them concurrently on the fleet engine (FIFO scheduling,
// per-campaign worker budgets, crash-safe v2 checkpoints), and serves
// the resulting artifacts from an indexed, queryable on-disk store.
//
// Usage:
//
//	rhserved -store /var/lib/rhserved
//	rhserved -addr 127.0.0.1:8077 -store ./store -max-active 2 -worker-budget 4
//
// API (see the README's "Campaign server" section for curl examples):
//
//	POST /v1/campaigns              submit a spec (same JSON as rhfleet -spec)
//	GET  /v1/campaigns              list campaigns
//	GET  /v1/campaigns/{id}         one campaign's status
//	GET  /v1/campaigns/{id}/events  progress stream (SSE) until terminal
//	GET  /v1/artifacts?...          query the artifact index
//	GET  /v1/artifacts/{id}         raw artifact bytes (byte-identical to rhchar)
//	GET  /v1/artifacts/{id}/rows    filtered, key-sorted artifact rows
//	POST /v1/leases/{acquire,beat,release}  fenced shard leases for rhfleet -lease-url
//	GET  /v1/leases                 lease inventory
//	POST /v1/workers/{register,beat,deregister}  fleet worker registry (rhfleet -worker)
//	GET  /v1/workers                registered-worker inventory
//	GET  /v1/stats                  placement-layer counters
//	GET  /healthz                   liveness
//
// Durability: artifacts land via atomic rename, the index is an
// fsynced CRC-trailed append-only log, and every campaign checkpoints
// in the v2 format — so rhserved can be SIGKILLed at any instant and
// the next start reloads the index, re-enqueues interrupted campaigns
// and resumes them from their checkpoints, converging to the same
// artifact bytes. The store directory is guarded by an advisory flock:
// one daemon per store, dropped automatically by the kernel on death.
//
// Shutdown: the first SIGINT/SIGTERM drains — no new campaigns are
// accepted, dispatch stops, in-flight jobs finish and checkpoint, the
// HTTP listener closes, and rhserved exits 0 (interrupted campaigns
// resume on the next start). A second signal, or the drain deadline,
// aborts hard with exit 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rowhammer/internal/durable"
	"rowhammer/internal/leasesvc"
	"rowhammer/internal/server"
	"rowhammer/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8077", "HTTP listen address")
		storeDir = flag.String("store", "", "artifact store directory (required; created if missing)")
		maxAct   = flag.Int("max-active", 2, "campaigns running concurrently; the rest queue FIFO")
		maxQ     = flag.Int("max-queued", 0, "bound the FIFO submit queue; a full queue answers 429 with Retry-After (0 = unbounded)")
		budget   = flag.Int("worker-budget", 0, "worker-pool cap per campaign (0 = no cap)")
		drainTO  = flag.Duration("drain-timeout", 60*time.Second, "grace period for in-flight jobs after the first SIGINT/SIGTERM")
		maxSpec  = flag.Int64("max-spec-bytes", server.DefaultMaxSpecBytes, "largest accepted POST /v1/campaigns body; larger specs answer 413")
		leaseTTL = flag.Duration("lease-ttl", leasesvc.DefaultTTL, "default TTL for shard leases served under /v1/leases (rhfleet -lease-url workers)")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "rhserved: -store is required")
		os.Exit(2)
	}

	st, report, err := store.Open(*storeDir)
	if err != nil {
		if errors.Is(err, durable.ErrLocked) {
			fatal(fmt.Errorf("store %s is served by another rhserved: %w", *storeDir, err))
		}
		fatal(err)
	}
	defer st.Close()
	logf("store %s: %d artifact(s) loaded", *storeDir, report.Loaded)
	if report.DroppedLines > 0 || len(report.DroppedPayloads) > 0 {
		logf("store %s: dropped %d corrupt index line(s) and %d corrupt payload(s) %v",
			*storeDir, report.DroppedLines, len(report.DroppedPayloads), report.DroppedPayloads)
	}

	// One lease service carries both halves of the placement layer:
	// fenced shard leases under /v1/leases and the worker registry
	// under /v1/workers. Sharded campaigns fan out across registered
	// workers when any are alive, and run in-process otherwise.
	fleet := leasesvc.NewService(*leaseTTL)

	mgr, err := server.NewManager(st, server.ManagerConfig{
		MaxActive:    *maxAct,
		MaxQueued:    *maxQ,
		WorkerBudget: *budget,
		Fleet:        fleet,
		Log:          logf,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The smoke test (and humans with -addr :0) read the bound address
	// off this line.
	logf("listening on %s", ln.Addr())

	api := server.New(mgr, st)
	api.SetMaxSpecBytes(*maxSpec)
	// The placement layer rides the same mux and listener: rhfleet
	// -lease-url and -worker processes and campaign clients share one
	// endpoint.
	api.Mount(fleet.Register)

	// ReadHeaderTimeout caps how long a client may dribble its request
	// headers (slow-loris); IdleTimeout reclaims parked keep-alive
	// connections. No overall write timeout: /v1/campaigns/{id}/events
	// is a legitimately long-lived SSE stream.
	httpSrv := &http.Server{
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		mgr.Close()
		fatal(err)
	case s := <-sigCh:
		logf("%v: draining — no new campaigns, in-flight jobs get %v (signal again to abort)", s, *drainTO)
	}

	// Graceful drain, racing a second signal and the deadline.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	go func() {
		select {
		case s := <-sigCh:
			logf("%v: aborting", s)
			cancel()
		case <-drainCtx.Done():
		}
	}()
	drainErr := mgr.Drain(drainCtx)
	httpSrv.Shutdown(drainCtx)
	if drainErr != nil {
		logf("drain incomplete (%v); aborting in-flight jobs — their checkpoints are resumable", drainErr)
		mgr.Close()
		st.Close()
		os.Exit(1)
	}
	st.Close()
	logf("drained cleanly; interrupted campaigns resume on next start")
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rhserved: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rhserved: %v\n", err)
	os.Exit(1)
}
