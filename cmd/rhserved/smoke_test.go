//go:build unix

// Serve-smoke suite: builds the real rhserved and rhchar binaries and
// drives the daemon end to end over HTTP — submit, SSE to completion,
// byte-identity against rhchar, graceful SIGTERM drain, index reload
// on restart, and SIGKILL-anywhere resume convergence. `make
// serve-smoke` runs exactly this suite.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	servedBin string
	rhcharBin string
	buildErr  error
)

// binaries builds rhserved and rhchar once per test run: the smoke
// suite exercises the shipped daemon, not an httptest approximation.
func binaries(t *testing.T) (string, string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rhserved-smoke-*")
		if err != nil {
			buildErr = err
			return
		}
		servedBin = filepath.Join(dir, "rhserved")
		rhcharBin = filepath.Join(dir, "rhchar")
		if out, err := exec.Command("go", "build", "-o", servedBin, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build rhserved: %v\n%s", err, out)
			return
		}
		if out, err := exec.Command("go", "build", "-o", rhcharBin, "../rhchar").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build rhchar: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return servedBin, rhcharBin
}

// daemon is one running rhserved under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	logs *bytes.Buffer
	mu   sync.Mutex
}

// startDaemon launches rhserved against dir on an ephemeral port and
// waits for its listening line.
func startDaemon(t *testing.T, dir string, extraArgs ...string) *daemon {
	t.Helper()
	bin, _ := binaries(t)
	args := append([]string{"-addr", "127.0.0.1:0", "-store", dir}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, logs: &bytes.Buffer{}}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			fmt.Fprintln(d.logs, line)
			d.mu.Unlock()
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	select {
	case a := <-addrCh:
		d.base = "http://" + a
	case <-time.After(30 * time.Second):
		t.Fatalf("rhserved never listened; log:\n%s", d.log())
	}
	return d
}

func (d *daemon) log() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.logs.String()
}

// signalAndWait sends sig and returns the exit code.
func (d *daemon) signalAndWait(t *testing.T, sig syscall.Signal) int {
	t.Helper()
	if err := d.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("wait: %v", err)
	return -1
}

type status struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Done       int    `json:"done"`
	Total      int    `json:"total"`
	Error      string `json:"error"`
	ArtifactID string `json:"artifact_id"`
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func submit(t *testing.T, d *daemon, spec string) status {
	t.Helper()
	resp, err := http.Post(d.base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/campaigns: %d %s", resp.StatusCode, body)
	}
	var st status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollDone polls campaign status until done, with a generous deadline.
func pollDone(t *testing.T, d *daemon, id string) status {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		var st status
		if code := getJSON(t, d.base+"/v1/campaigns/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET status: %d", code)
		}
		switch st.State {
		case "done":
			return st
		case "failed":
			t.Fatalf("campaign failed: %+v\nlog:\n%s", st, d.log())
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck: %+v\nlog:\n%s", st, d.log())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rhcharJSON runs rhchar and returns its artifact JSON bytes — the
// byte-identity reference for the stored artifact.
func rhcharJSON(t *testing.T, seed string) []byte {
	t.Helper()
	_, rhchar := binaries(t)
	out, err := exec.Command(rhchar, "-exp", "fig5", "-scale", "tiny", "-seed", seed, "-format", "json").Output()
	if err != nil {
		t.Fatalf("rhchar: %v", err)
	}
	return out
}

const fig5Spec = `{"kind":"fig5","scale":"tiny","seed":1}`

// TestServeSmoke is the end-to-end path: submit over HTTP, stream SSE
// to completion, fetch the artifact and require byte-identity with
// rhchar, query the index, drain on SIGTERM with exit 0, and serve
// everything again after a restart from the reloaded index.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, dir)

	st := submit(t, d, fig5Spec)
	if st.Total != 4 {
		t.Fatalf("fig5 expands to %d jobs, want 4", st.Total)
	}

	// Stream SSE until the stream ends; the final event must be done.
	resp, err := http.Get(d.base + "/v1/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var last status
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			if err := json.Unmarshal([]byte(data), &last); err != nil {
				t.Fatalf("bad SSE payload %q: %v", data, err)
			}
		}
	}
	resp.Body.Close()
	if last.State != "done" || last.Done != last.Total {
		t.Fatalf("SSE final event = %+v\nlog:\n%s", last, d.log())
	}

	// Byte-identity: stored artifact == rhchar -format json.
	artifact := getBytes(t, d.base+"/v1/artifacts/"+last.ArtifactID)
	if want := rhcharJSON(t, "1"); !bytes.Equal(artifact, want) {
		t.Fatalf("stored artifact differs from rhchar output (%d vs %d bytes)", len(artifact), len(want))
	}

	// Index query finds it.
	var metas []map[string]any
	if code := getJSON(t, d.base+"/v1/artifacts?experiment=fig5&seed=1&mfr=A", &metas); code != http.StatusOK || len(metas) != 1 {
		t.Fatalf("index query: %d, %d metas", code, len(metas))
	}

	// Graceful drain: SIGTERM exits 0.
	if code := d.signalAndWait(t, syscall.SIGTERM); code != 0 {
		t.Fatalf("SIGTERM exit code = %d\nlog:\n%s", code, d.log())
	}

	// Restart on the same store: index reloads, status and artifact
	// survive, and the campaign is not re-run.
	d2 := startDaemon(t, dir)
	var health map[string]any
	if code := getJSON(t, d2.base+"/healthz", &health); code != http.StatusOK || health["artifacts"] != float64(1) {
		t.Fatalf("healthz after restart: %d %+v", code, health)
	}
	var st2 status
	if code := getJSON(t, d2.base+"/v1/campaigns/"+st.ID, &st2); code != http.StatusOK || st2.State != "done" {
		t.Fatalf("status after restart: %d %+v\nlog:\n%s", code, st2, d2.log())
	}
	if again := getBytes(t, d2.base+"/v1/artifacts/"+st.ID); !bytes.Equal(again, artifact) {
		t.Fatal("artifact changed across restart")
	}
	// Resubmitting the same spec is a no-op against the recovered state.
	if re := submit(t, d2, fig5Spec); re.ID != st.ID || re.State != "done" {
		t.Fatalf("resubmit after restart: %+v", re)
	}
	if code := d2.signalAndWait(t, syscall.SIGTERM); code != 0 {
		t.Fatalf("second drain exit code = %d", code)
	}
}

// TestServeSmokeKillResume SIGKILLs the daemon right after accepting
// a campaign — wherever that lands (mid-checkpoint, mid-job,
// pre-dispatch) — and requires the restarted daemon to converge to
// the same artifact bytes rhchar produces, resuming whatever the v2
// checkpoint captured rather than starting from nothing.
func TestServeSmokeKillResume(t *testing.T) {
	dir := t.TempDir()
	// workers=1 serializes the 4 shards, widening the mid-campaign
	// window the SIGKILL lands in.
	d := startDaemon(t, dir, "-worker-budget", "1")
	st := submit(t, d, `{"kind":"fig5","scale":"tiny","seed":2}`)

	// Let the campaign get going, then kill without any warning.
	time.Sleep(50 * time.Millisecond)
	d.cmd.Process.Kill()
	d.cmd.Wait()

	// The kernel dropped the store flock with the process; a restart
	// recovers the campaign and finishes it.
	d2 := startDaemon(t, dir)
	final := pollDone(t, d2, st.ID)
	artifact := getBytes(t, d2.base+"/v1/artifacts/"+final.ArtifactID)
	if want := rhcharJSON(t, "2"); !bytes.Equal(artifact, want) {
		t.Fatalf("post-crash artifact differs from rhchar output (%d vs %d bytes)\nlog:\n%s",
			len(artifact), len(want), d2.log())
	}
	if code := d2.signalAndWait(t, syscall.SIGTERM); code != 0 {
		t.Fatalf("drain after recovery exit code = %d", code)
	}
}

// TestServeSmokeHealthzDraining: once the first SIGTERM starts the
// drain, /healthz must flip from 200 to 503 with "draining": true
// while in-flight jobs finish — the readiness signal a load balancer
// needs to stop routing submits at a daemon that is shutting down.
func TestServeSmokeHealthzDraining(t *testing.T) {
	dir := t.TempDir()
	// workers=1 over a 16-job campaign keeps the daemon busy long
	// enough that the drain window is observable.
	d := startDaemon(t, dir, "-worker-budget", "1")
	var health map[string]any
	if code := getJSON(t, d.base+"/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz before drain: %d %+v", code, health)
	}
	submit(t, d, `{"kind":"hcfirst","mfrs":["A","B","C","D"],"modules_per_mfr":4,"scale":"tiny","seed":5,"workers":1}`)

	// Hammer /healthz from before the signal until the listener
	// closes, recording whether the draining 503 was ever served.
	sawDraining := make(chan bool, 1)
	go func() {
		saw := false
		for {
			resp, err := http.Get(d.base + "/healthz")
			if err != nil {
				sawDraining <- saw
				return
			}
			var body map[string]any
			json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable && body["draining"] == true {
				saw = true
			}
		}
	}()

	if code := d.signalAndWait(t, syscall.SIGTERM); code != 0 {
		t.Fatalf("SIGTERM exit code = %d\nlog:\n%s", code, d.log())
	}
	select {
	case saw := <-sawDraining:
		if !saw {
			t.Fatalf("healthz never reported draining during shutdown\nlog:\n%s", d.log())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("healthz poller never observed the listener closing")
	}
}
