// Command rhprofile characterizes one simulated DRAM module and emits
// a machine-readable JSON profile: the data a deployed row-aware
// defense (Defense Improvement 1), retirement policy (Improvement 3)
// or column-aware ECC planner (Improvement 6) would consume.
//
// Usage:
//
//	rhprofile -mfr A -seed 1 -rows 64 > module-a1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	rh "rowhammer"
	"rowhammer/internal/profiling"
)

// Profile is the emitted document.
type Profile struct {
	Manufacturer string  `json:"manufacturer"`
	Seed         uint64  `json:"seed"`
	Pattern      string  `json:"worst_case_pattern"`
	MinHCfirst   int64   `json:"min_hcfirst"`
	P95Ratio     float64 `json:"p95_over_min_ratio"`

	Rows []RowProfile `json:"rows"`
	// VulnerableCells lists per-cell vulnerable temperature ranges
	// observed in the temperature sweep.
	VulnerableCells []CellProfile `json:"vulnerable_cells,omitempty"`
}

// RowProfile is one row's measurement.
type RowProfile struct {
	Row     int   `json:"row"`
	HCfirst int64 `json:"hcfirst,omitempty"`
	Found   bool  `json:"vulnerable"`
}

// CellProfile is one vulnerable cell's observed temperature range.
type CellProfile struct {
	Row   int     `json:"row"`
	Bit   int     `json:"bit"`
	TempL float64 `json:"temp_lo_c"`
	TempH float64 `json:"temp_hi_c"`
}

func main() {
	var (
		mfr        = flag.String("mfr", "A", "manufacturer profile (A-D)")
		seed       = flag.Uint64("seed", 1, "module seed")
		rows       = flag.Int("rows", 48, "victim rows to profile")
		reps       = flag.Int("reps", 3, "repetitions per measurement")
		temps      = flag.Bool("temps", false, "include the temperature sweep (slower)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stop()
	stopProfiles = stop

	p := rh.ProfileByName(*mfr)
	if p == nil {
		fmt.Fprintf(os.Stderr, "rhprofile: unknown manufacturer %q\n", *mfr)
		os.Exit(2)
	}
	bench, err := rh.NewBench(rh.BenchConfig{Profile: p, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	t := rh.NewTester(bench)
	g := bench.Geometry()

	// Victim rows spread across the bank, off subarray edges.
	var victims []int
	step := g.RowsPerBank / (*rows + 1)
	if step < 1 {
		step = 1
	}
	for r := step; r < g.RowsPerBank && len(victims) < *rows; r += step {
		if r%g.SubarrayRows == 0 || r%g.SubarrayRows == g.SubarrayRows-1 {
			continue
		}
		victims = append(victims, r)
	}

	pattern, err := t.WorstCasePattern(0, victims[:min(3, len(victims))], 150_000)
	if err != nil {
		fatal(err)
	}
	profile, err := t.RowHCFirstProfile(0, victims, rh.HCFirstConfig{Pattern: pattern}, *reps)
	if err != nil {
		fatal(err)
	}
	summary, err := rh.SummarizeRowVariation(profile)
	if err != nil {
		fatal(err)
	}

	out := Profile{
		Manufacturer: p.Name,
		Seed:         *seed,
		Pattern:      pattern.String(),
		MinHCfirst:   int64(summary.MinHC),
		P95Ratio:     summary.RatioP95,
	}
	for _, r := range profile {
		out.Rows = append(out.Rows, RowProfile{Row: r.Row, HCfirst: r.HCfirst, Found: r.Found})
	}

	if *temps {
		sweep, err := t.TemperatureSweep(rh.TempSweepConfig{
			Bank: 0, Victims: victims, Hammers: 300_000, Pattern: pattern,
		})
		if err != nil {
			fatal(err)
		}
		for cell, mask := range sweep.Cells {
			lo, hi := -1, -1
			for i := range sweep.Temps {
				if mask&(1<<uint(i)) != 0 {
					if lo < 0 {
						lo = i
					}
					hi = i
				}
			}
			out.VulnerableCells = append(out.VulnerableCells, CellProfile{
				Row: cell.Row, Bit: cell.Bit,
				TempL: sweep.Temps[lo], TempH: sweep.Temps[hi],
			})
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// stopProfiles is invoked by fatal before os.Exit (which would skip
// the deferred stop and truncate any in-flight CPU profile).
var stopProfiles = func() {}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "rhprofile:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
