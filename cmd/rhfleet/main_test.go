package main

import "testing"

// TestResolveExperiment: measurement kinds win bare-name collisions
// (the wcdp measurement kind predates the wcdp experiment), the exp:
// prefix forces the experiment, and unknown names resolve to nothing.
func TestResolveExperiment(t *testing.T) {
	cases := []struct {
		kind string
		want string // experiment ID, "" = measurement/unknown
	}{
		{"hcfirst", ""},
		{"ber", ""},
		{"wcdp", ""}, // collision: measurement kind wins
		{"spatial", ""},
		{"fig5", "fig5"},
		{"table3", "table3"},
		{"exp:wcdp", "wcdp"}, // explicit prefix selects the experiment
		{"exp:fig5", "fig5"},
		{"nosuch", ""},
		{"exp:nosuch", ""},
	}
	for _, c := range cases {
		e := resolveExperiment(c.kind)
		got := ""
		if e != nil {
			got = e.ID
		}
		if got != c.want {
			t.Errorf("resolveExperiment(%q) = %q, want %q", c.kind, got, c.want)
		}
	}
}
