package main

import (
	"fmt"
	"strings"
)

// modeFlags is the subset of rhfleet's flags whose combination picks
// the process role: plain campaign, -shard worker, -coordinate,
// -merge-shards, or -worker (fleet member). validateModeFlags is the
// single place the legal combinations live, so every illegal mix dies
// with a one-line usage error instead of a confusing failure deep
// inside whichever mode happened to win.
type modeFlags struct {
	shard       string // -shard i/N
	coordinate  int    // -coordinate N
	mergeShards bool   // -merge-shards
	worker      bool   // -worker
	shardDir    string // -shard-dir
	leaseURL    string // -lease-url
	leaseListen string // -lease-listen
	workerIDSet bool   // -worker-id was given explicitly
	slotsSet    bool   // -slots was given explicitly
}

// validateModeFlags enforces the flag matrix. Errors are one line and
// name the offending flags; fatalUsage turns them into exit 2.
func validateModeFlags(f modeFlags) error {
	var modes []string
	if f.shard != "" {
		modes = append(modes, "-shard")
	}
	if f.coordinate > 0 {
		modes = append(modes, "-coordinate")
	}
	if f.mergeShards {
		modes = append(modes, "-merge-shards")
	}
	if f.worker {
		modes = append(modes, "-worker")
	}
	if len(modes) > 1 {
		return fmt.Errorf("%s are mutually exclusive — pick one role per process", strings.Join(modes, " and "))
	}
	shardMode := f.shard != "" || f.coordinate > 0 || f.mergeShards
	switch {
	case shardMode && f.shardDir == "":
		return fmt.Errorf("-shard, -coordinate and -merge-shards require -shard-dir")
	case f.worker && f.leaseURL == "":
		return fmt.Errorf("-worker requires -lease-url (the placement layer it registers with)")
	case f.worker && f.shardDir != "":
		return fmt.Errorf("-worker takes shard directories from its placements; drop -shard-dir")
	case f.leaseListen != "" && f.coordinate <= 0:
		return fmt.Errorf("-lease-listen is a coordinator flag; it requires -coordinate")
	case f.leaseListen != "" && f.leaseURL != "":
		return fmt.Errorf("-lease-listen and -lease-url are mutually exclusive: self-host the lease service or point at one, not both")
	case f.workerIDSet && !f.worker:
		return fmt.Errorf("-worker-id requires -worker")
	case f.slotsSet && !f.worker:
		return fmt.Errorf("-slots requires -worker")
	}
	return nil
}
