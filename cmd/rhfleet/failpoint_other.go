//go:build !unix

package main

import rh "rowhammer"

// armFailpoint is the crash-injection seam; self-SIGKILL needs
// syscall.Kill, so on non-unix platforms the seam is disarmed.
func armFailpoint(cw *rh.CampaignCheckpointWriter) {}
