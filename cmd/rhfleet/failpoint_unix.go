//go:build unix

package main

import (
	"io"
	"os"
	"strconv"
	"syscall"

	rh "rowhammer"
	"rowhammer/internal/durable"
)

// armFailpoint installs the crash-injection seam: with
// RHFLEET_FAILPOINT=N in the environment, the process SIGKILLs itself
// the instant the checkpoint writer has emitted exactly N bytes —
// mid-record, mid-CRC, wherever N lands. The crash test suite uses it
// to prove the kill-anywhere guarantee against the real binary; it is
// never set in normal operation.
func armFailpoint(cw *rh.CampaignCheckpointWriter) {
	v := os.Getenv("RHFLEET_FAILPOINT")
	if v == "" {
		return
	}
	off, err := strconv.ParseInt(v, 10, 64)
	if err != nil || off < 0 {
		return
	}
	cw.Wrap(func(w io.Writer) io.Writer {
		return &durable.FailpointWriter{W: w, Remaining: off, OnTrip: func() error {
			return syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}}
	})
}
