//go:build unix

package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rowhammer/internal/campaign"
	"rowhammer/internal/shard"
)

// The cross-machine drill: shard workers own their shards through the
// fenced lease service over loopback HTTP instead of local flocks,
// with deterministic network chaos (partitions, drops, lost
// responses) injected into the lease path and SIGKILLs landing
// mid-checkpoint-write — and the merged summary must still be
// byte-identical to a single-process run. Tests are named
// TestCrashShardNet* so they ride both `make crash` (-run Crash) and
// `make chaos-net` (-run TestCrashShardNet).

// coordNetArgs is coordArgs plus a self-hosted lease service: the
// coordinator listens on an ephemeral loopback port and hands every
// worker its URL via -lease-url.
func coordNetArgs(dir, sum string, shards int) []string {
	return append(coordArgs(dir, sum, shards), "-lease-listen", "127.0.0.1:0")
}

// netCrashDir returns the drill's shard directory. When RH_CRASH_DIR
// is set (the `make chaos-net` target), checkpoints and fence files
// land there so CI can upload them from failed runs; otherwise
// t.TempDir keeps everything ephemeral.
func netCrashDir(t *testing.T) string {
	t.Helper()
	base := os.Getenv("RH_CRASH_DIR")
	if base == "" {
		return t.TempDir()
	}
	dir, err := os.MkdirTemp(base, filepath.Base(t.Name())+"-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			os.RemoveAll(dir)
		}
	})
	return dir
}

// netRefSummary runs the single-process reference campaign and
// returns its summary bytes — the bar every chaotic run must meet.
func netRefSummary(t *testing.T) []byte {
	t.Helper()
	refDir := t.TempDir()
	refSumPath := filepath.Join(refDir, "sum.json")
	refArgs := []string{"-mfrs", "A,B,C,D", "-modules", "4", "-exp", "hcfirst", "-scale", "tiny",
		"-seed", "7", "-quiet", "-out", filepath.Join(refDir, "fleet.jsonl"), "-summary", refSumPath}
	if code, killed := runFleet(t, -1, refArgs...); code != 0 || killed {
		t.Fatalf("reference run: exit %d, killed=%v", code, killed)
	}
	refSum, err := os.ReadFile(refSumPath)
	if err != nil {
		t.Fatal(err)
	}
	return refSum
}

// auditShards loads every shard checkpoint and requires zero
// duplicate records (no zombie append survived dedup by landing
// twice) and a fencing token on every record of every remote-lease
// shard; it returns the per-shard fence-file high-water marks.
func auditShards(t *testing.T, dir string, shards int) map[int]uint64 {
	t.Helper()
	fences := make(map[int]uint64, shards)
	for _, a := range shard.Partition(shards) {
		rep, err := campaign.LoadCheckpointReport(shard.CheckpointPath(dir, a), campaign.ResumeOptions{})
		if err != nil {
			t.Fatalf("shard %s: loading checkpoint: %v", a, err)
		}
		if rep.DuplicateRecords != 0 {
			t.Fatalf("shard %s: %d duplicate record(s) — a superseded writer published", a, rep.DuplicateRecords)
		}
		for key, rec := range rep.Records {
			if rec.Fence == 0 {
				t.Fatalf("shard %s: record %s carries no fencing token", a, key)
			}
		}
		tok, err := shard.ReadFence(shard.FencePath(dir, a))
		if err != nil {
			t.Fatalf("shard %s: reading fence: %v", a, err)
		}
		fences[a.Index] = tok
	}
	return fences
}

// TestCrashShardNetRemoteLeaseParity: a coordinated run whose shard
// ownership lives entirely in the self-hosted lease service — no
// local flock leases — converges byte-identically to the
// single-process run, every record carries the generation-0 fencing
// token, and every fence file sits at the first token.
func TestCrashShardNetRemoteLeaseParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real subprocesses")
	}
	refSum := netRefSummary(t)

	dir := netCrashDir(t)
	sum := filepath.Join(dir, "sum.json")
	code, killed, errOut := runCoord(t, nil, coordNetArgs(dir, sum, 4)...)
	if code != 0 || killed {
		t.Fatalf("remote-lease run: exit %d, killed=%v\n%s", code, killed, errOut)
	}
	if !strings.Contains(errOut, "lease service listening on http://127.0.0.1:") {
		t.Fatalf("coordinator never announced the lease service\n%s", errOut)
	}
	if !strings.Contains(errOut, "remote lease acquired, fencing token 1") {
		t.Fatalf("no worker reported a remote lease — flock fallback?\n%s", errOut)
	}
	got, err := os.ReadFile(sum)
	if err != nil {
		t.Fatalf("no summary published: %v", err)
	}
	if !bytes.Equal(refSum, got) {
		t.Fatalf("remote-lease summary differs from single-process run:\n%s\nwant:\n%s", got, refSum)
	}
	for idx, tok := range auditShards(t, dir, 4) {
		if tok != 1 {
			t.Fatalf("shard %d: fence file at token %d, want 1 (no reassignment happened)", idx, tok)
		}
	}
}

// TestCrashShardNetPartitionReassign arms a never-healing one-way
// partition on one shard's generation-0 worker: its lease requests
// are delivered (the service grants token 1) but every response is
// lost, so the worker can never learn it owns the shard and dies.
// The coordinator must reassign; the successor patiently waits out
// the orphaned lease, acquires token 2, and the merged summary is
// byte-identical — the partitioned zombie published nothing.
func TestCrashShardNetPartitionReassign(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real subprocesses")
	}
	refSum := netRefSummary(t)

	dir := netCrashDir(t)
	sum := filepath.Join(dir, "sum.json")
	env := []string{"RHFLEET_SHARD_NETCHAOS=1:partition=0:-1"}
	code, killed, errOut := runCoord(t, env, coordNetArgs(dir, sum, 4)...)
	if code != 0 || killed {
		t.Fatalf("partition drill: exit %d, killed=%v\n%s", code, killed, errOut)
	}
	if !strings.Contains(errOut, "network chaos active") {
		t.Fatalf("chaos profile was never armed — drill is vacuous\n%s", errOut)
	}
	if !strings.Contains(errOut, "reassigning") {
		t.Fatalf("partitioned shard was never reassigned\n%s", errOut)
	}
	got, err := os.ReadFile(sum)
	if err != nil {
		t.Fatalf("no summary published: %v", err)
	}
	if !bytes.Equal(refSum, got) {
		t.Fatalf("post-partition summary differs from single-process run:\n%s\nwant:\n%s", got, refSum)
	}
	fences := auditShards(t, dir, 4)
	// The partitioned shard's successor holds token 2: token 1 was
	// granted to the zombie (its acquire request got through) and aged
	// out unused.
	if fences[1] < 2 {
		t.Fatalf("shard 1 fence at token %d, want >= 2 (successor never superseded the zombie)", fences[1])
	}
	rep, err := campaign.LoadCheckpointReport(
		shard.CheckpointPath(dir, shard.Assignment{Index: 1, Of: 4}), campaign.ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for key, rec := range rep.Records {
		if rec.Fence < 2 {
			t.Fatalf("shard 1 record %s has fence %d — written by the partitioned zombie?", key, rec.Fence)
		}
	}
}

// TestCrashShardNetKillUnderFlaky runs one shard's generation-0
// worker under a transiently lossy lease network (drops, lost
// responses, 503s, latency over a bounded prefix) and SIGKILLs it
// mid-checkpoint-write. The successor must wait out the killed
// worker's still-held lease, take the shard under a higher fencing
// token, and converge byte-identically with no duplicate records.
func TestCrashShardNetKillUnderFlaky(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real subprocesses")
	}
	refSum := netRefSummary(t)

	// A clean remote-lease run measures a shard checkpoint so the kill
	// offset lands inside real writes.
	cleanDir := t.TempDir()
	cleanSum := filepath.Join(cleanDir, "sum.json")
	if code, killed, errOut := runCoord(t, nil, coordNetArgs(cleanDir, cleanSum, 4)...); code != 0 || killed {
		t.Fatalf("clean remote run: exit %d, killed=%v\n%s", code, killed, errOut)
	}
	shardCkpt, err := os.ReadFile(shard.CheckpointPath(cleanDir, shard.Assignment{Index: 1, Of: 4}))
	if err != nil {
		t.Fatal(err)
	}

	dir := netCrashDir(t)
	sum := filepath.Join(dir, "sum.json")
	env := []string{
		fmt.Sprintf("RHFLEET_SHARD_FAILPOINT=1:%d", int64(len(shardCkpt))/2),
		"RHFLEET_SHARD_NETCHAOS=1:flaky+seed=11+maxops=25",
	}
	code, killed, errOut := runCoord(t, env, coordNetArgs(dir, sum, 4)...)
	if code != 0 || killed {
		t.Fatalf("flaky+kill drill: exit %d, killed=%v\n%s", code, killed, errOut)
	}
	if !strings.Contains(errOut, "signal: killed") {
		t.Fatalf("worker was never killed — drill is vacuous\n%s", errOut)
	}
	if !strings.Contains(errOut, "reassigning") {
		t.Fatalf("killed shard was never reassigned\n%s", errOut)
	}
	got, err := os.ReadFile(sum)
	if err != nil {
		t.Fatalf("no summary published: %v", err)
	}
	if !bytes.Equal(refSum, got) {
		t.Fatalf("post-kill summary differs from single-process run:\n%s\nwant:\n%s", got, refSum)
	}
	fences := auditShards(t, dir, 4)
	if fences[1] < 2 {
		t.Fatalf("shard 1 fence at token %d, want >= 2 (successor never superseded the killed worker)", fences[1])
	}
}
