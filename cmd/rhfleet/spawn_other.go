//go:build !linux

package main

import "syscall"

// workerSysProcAttr: PDEATHSIG is Linux-only; elsewhere a killed
// coordinator can leave workers running, and the shard leases are
// what keeps a successor from double-running their slices.
func workerSysProcAttr() *syscall.SysProcAttr { return nil }
