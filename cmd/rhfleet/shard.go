package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	rh "rowhammer"
	"rowhammer/internal/campaign"
	"rowhammer/internal/durable"
	"rowhammer/internal/inject"
	"rowhammer/internal/leasesvc"
	"rowhammer/internal/server"
	"rowhammer/internal/shard"
)

// The distributed modes. One campaign splits into N disjoint shards
// (internal/shard), each an independent `rhfleet -shard i/N` process
// with its own v2 checkpoint and flock-backed lease under -shard-dir;
// `rhfleet -coordinate N` spawns and supervises them — reassigning a
// dead or stalled shard's remaining jobs to a fresh worker — and
// `rhfleet -merge-shards` folds the shard checkpoints into a summary
// or artifact byte-identical to a single-process run.
//
// With -lease-url (or a coordinator's -lease-listen), shard ownership
// moves from local flocks to the fenced lease service: workers may run
// on any host that can reach the URL and the shared -shard-dir, every
// acquisition mints a monotonic fencing token enforced on each record
// append, and the coordinator supervises liveness through lease
// heartbeats instead of lease-file mtimes.

// shardWorkerConfig parameterizes one -shard i/N worker run.
type shardWorkerConfig struct {
	assignment string
	dir        string
	rsv        server.Resolved
	profile    *inject.Profile
	quiet      bool
	timeout    time.Duration
	drainTO    time.Duration
	leaseURL   string
	leaseTTL   time.Duration
	netChaos   string
}

// leaseClient builds a lease/registry client for the -lease-url
// modes, wrapping its transport with the deterministic network chaos
// profile when one is armed (the -net-chaos flag, or RHFLEET_NETCHAOS
// from a coordinator drill). The same client speaks both halves of
// the placement layer: fenced shard leases and the worker registry.
func leaseClient(baseURL, chaosSpec string, seed uint64, label string) (*leasesvc.Client, error) {
	if chaosSpec == "" {
		chaosSpec = os.Getenv("RHFLEET_NETCHAOS")
	}
	c := &leasesvc.Client{BaseURL: strings.TrimRight(baseURL, "/"), Seed: seed}
	if chaosSpec != "" && chaosSpec != "none" {
		p, err := inject.ParseNet(chaosSpec)
		if err != nil {
			return nil, err
		}
		if p.Active() {
			c.HTTP = &http.Client{Transport: inject.WrapTransport(nil, p, label)}
			fmt.Fprintf(os.Stderr, "rhfleet: %s: network chaos active on lease client: %s\n", label, p)
		}
	}
	return c, nil
}

// runShardWorker is the -shard i/N mode: run exactly this shard's
// slice of the grid, heartbeating the shard lease, and exit with the
// same code conventions as a whole-campaign run.
func runShardWorker(cfg shardWorkerConfig) int {
	a, err := shard.ParseAssignment(cfg.assignment)
	if err != nil {
		fatalUsage(err)
	}
	base := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		base, cancel = context.WithTimeout(base, cfg.timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	drainCh := armDrainSignals(ctx, cancel, cfg.drainTO)

	runner := cfg.rsv.Runner
	if cfg.profile != nil {
		runner = inject.WrapRunner(runner, cfg.profile)
		fmt.Fprintf(os.Stderr, "rhfleet: shard %s: fault injection active: %s (seed %d)\n", a, cfg.profile, cfg.profile.Seed)
	}
	start := time.Now()
	rc := shard.RunConfig{
		Dir:           cfg.dir,
		Assignment:    a,
		Spec:          cfg.rsv.Spec,
		Runner:        runner,
		Drain:         drainCh,
		ArmCheckpoint: armFailpoint,
		Log:           func(f string, args ...any) { fmt.Fprintf(os.Stderr, "rhfleet: "+f+"\n", args...) },
	}
	if cfg.leaseURL != "" {
		client, cerr := leaseClient(cfg.leaseURL, cfg.netChaos, cfg.rsv.Spec.Seed, fmt.Sprintf("shard-%d", a.Index))
		if cerr != nil {
			fatalUsage(cerr)
		}
		rc.Lease = client
		rc.LeaseTTL = cfg.leaseTTL
		rc.Owner = leasesvc.DefaultOwner()
	}
	if !cfg.quiet {
		rc.Progress = func(done, total int, rec rh.CampaignRecord) {
			status := "ok"
			if rec.Err != "" {
				status = "FAILED: " + rec.Err
			}
			fmt.Fprintf(os.Stderr, "rhfleet: shard %s [%d/%d] %-24s %s (%.1fs elapsed)\n",
				a, done, total, rec.Key, status, time.Since(start).Seconds())
		}
	}
	res, err := shard.RunShard(ctx, rc)
	if res != nil {
		fmt.Fprintf(os.Stderr, "rhfleet: shard %s: %d run, %d resumed, %d retried, %d failed in %v\n",
			a, res.Completed, res.Skipped, res.Retried, res.Failed, time.Since(start).Round(time.Millisecond))
	}
	if err != nil {
		switch {
		case errors.Is(err, shard.ErrFenced):
			fmt.Fprintf(os.Stderr, "rhfleet: shard %s fenced: a successor holds a newer lease token — this worker's remaining appends were refused (%v)\n", a, err)
			return 1
		case errors.Is(err, rh.ErrCampaignDrained):
			fmt.Fprintf(os.Stderr, "rhfleet: shard %s drained; checkpoint flushed — the coordinator (or a rerun) resumes it\n", a)
			return 3
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "rhfleet: shard %s interrupted (%v)\n", a, err)
			return 3
		case res != nil && res.Quarantined > 0:
			fmt.Fprintf(os.Stderr, "rhfleet: shard %s partial: %d jobs quarantined (modules %s)\n",
				a, res.Quarantined, strings.Join(res.QuarantinedModules(), ", "))
			return 4
		default:
			fmt.Fprintf(os.Stderr, "rhfleet: shard %s: %v\n", a, err)
			return 1
		}
	}
	return 0
}

// fleetWorkerCfg parameterizes a -worker process: a fleet member that
// registers with the placement layer at -lease-url and pulls shard
// placements from the scheduler instead of being handed one on the
// command line.
type fleetWorkerCfg struct {
	id       string
	slots    int
	leaseURL string
	leaseTTL time.Duration
	netChaos string
	profile  *inject.Profile
	seed     uint64
	quiet    bool
	timeout  time.Duration
	drainTO  time.Duration
}

// runFleetWorker is the -worker mode: register with the worker
// registry, heartbeat, and execute whatever placements the scheduler
// assigns. Each placement resolves its own campaign from the
// spec.json the coordinator persisted into the placement's shard
// directory, verifies the campaign identity against the placement,
// and runs under the shard's fenced lease — exactly what a
// hand-started `rhfleet -shard i/N -lease-url ...` does, minus the
// hands.
func runFleetWorker(cfg fleetWorkerCfg) int {
	id := cfg.id
	if id == "" {
		id = leasesvc.DefaultOwner()
	}
	client, err := leaseClient(cfg.leaseURL, cfg.netChaos, cfg.seed, "worker "+id)
	if err != nil {
		fatalUsage(err)
	}
	base := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		base, cancel = context.WithTimeout(base, cfg.timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	drainCh := armDrainSignals(ctx, cancel, cfg.drainTO)
	logf := func(f string, args ...any) { fmt.Fprintf(os.Stderr, "rhfleet: "+f+"\n", args...) }

	run := func(ctx context.Context, p leasesvc.Placement, drain <-chan struct{}) error {
		specPath := shard.SpecPath(p.Dir)
		b, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		var ws server.Spec
		if err := json.Unmarshal(b, &ws); err != nil {
			return fmt.Errorf("parsing %s: %w", specPath, err)
		}
		raw, err := ws.CampaignSpec()
		if err != nil {
			return err
		}
		rsv, err := server.Resolve(raw)
		if err != nil {
			return err
		}
		if got := rsv.Spec.IdentityHash(); got != p.Campaign {
			return fmt.Errorf("placement names campaign %s but %s resolves to %s", p.Campaign, specPath, got)
		}
		runner := rsv.Runner
		if cfg.profile != nil {
			runner = inject.WrapRunner(runner, cfg.profile)
		}
		a := shard.Assignment{Index: p.Shard, Of: p.Of}
		rc := shard.RunConfig{
			Dir:           p.Dir,
			Assignment:    a,
			Spec:          rsv.Spec,
			Runner:        runner,
			Drain:         drain,
			ArmCheckpoint: armFailpoint,
			Lease:         client,
			LeaseTTL:      cfg.leaseTTL,
			Owner:         id,
			Log:           logf,
		}
		if !cfg.quiet {
			start := time.Now()
			rc.Progress = func(done, total int, rec rh.CampaignRecord) {
				status := "ok"
				if rec.Err != "" {
					status = "FAILED: " + rec.Err
				}
				fmt.Fprintf(os.Stderr, "rhfleet: shard %s [%d/%d] %-24s %s (%.1fs elapsed)\n",
					a, done, total, rec.Key, status, time.Since(start).Seconds())
			}
		}
		_, err = shard.RunShard(ctx, rc)
		return err
	}

	err = shard.RunWorker(ctx, shard.WorkerConfig{
		Registry: client,
		ID:       id,
		Slots:    cfg.slots,
		TTL:      cfg.leaseTTL,
		Run:      run,
		Drain:    drainCh,
		Log:      logf,
	})
	switch {
	case errors.Is(err, campaign.ErrDrained):
		fmt.Fprintf(os.Stderr, "rhfleet: worker %s drained; placements checkpointed — the scheduler reassigns what remains\n", id)
		return 0
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "rhfleet: worker %s interrupted (%v)\n", id, err)
		return 3
	default:
		fmt.Fprintf(os.Stderr, "rhfleet: worker %s: %v\n", id, err)
		return 1
	}
}

// coordinatorConfig parameterizes a -coordinate N run.
type coordinatorConfig struct {
	dir         string
	shards      int
	wire        server.Spec
	rsv         server.Resolved
	faults      string
	quiet       bool
	timeout     time.Duration
	drainTO     time.Duration
	leaseTTL    time.Duration
	maxRespawns int
	leaseURL    string
	leaseListen string
	format      string
	sumOut      string
	artOut      string
}

// leaseService resolves the coordinator's lease setup: -lease-listen
// self-hosts a leasesvc.Service over HTTP and hands workers its URL;
// -lease-url points everyone at an external service (rhserved). The
// returned probe supervises workers through lease heartbeats, url is
// what spawned workers get as -lease-url, svc is the self-hosted
// service (nil otherwise) so the coordinator can mirror its local
// workers into the worker registry, and shutdown closes the
// self-hosted listener (no-op for external services).
func leaseService(cfg coordinatorConfig, campaignHash string) (probe func(shard.Assignment) (shard.Probe, error), url string, svc *leasesvc.Service, shutdown func(), err error) {
	switch {
	case cfg.leaseListen != "":
		ln, lerr := net.Listen("tcp", cfg.leaseListen)
		if lerr != nil {
			return nil, "", nil, nil, fmt.Errorf("lease-listen: %w", lerr)
		}
		svc = leasesvc.NewService(cfg.leaseTTL)
		srv := &http.Server{
			Handler:           svc.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go srv.Serve(ln)
		url = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "rhfleet: lease service listening on %s\n", url)
		return shard.ServiceProbe(svc, campaignHash), url, svc, func() { srv.Close() }, nil
	case cfg.leaseURL != "":
		client := &leasesvc.Client{BaseURL: strings.TrimRight(cfg.leaseURL, "/"), Seed: cfg.rsv.Spec.Seed}
		return shard.ServiceProbe(client, campaignHash), cfg.leaseURL, nil, func() {}, nil
	}
	return nil, "", nil, func() {}, nil
}

// runCoordinator is the -coordinate N mode: persist the wire spec,
// spawn one rhfleet -shard worker per incomplete shard, supervise
// leases, reassign dead shards, and merge.
func runCoordinator(cfg coordinatorConfig) int {
	if err := os.MkdirAll(cfg.dir, 0o755); err != nil {
		fatal(err)
	}
	// Persist the wire spec first: workers are spawned with
	// `-spec <dir>/spec.json`, and any later merge or coordinator
	// restart reads the campaign from the directory itself.
	wb, err := json.MarshalIndent(cfg.wire, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := durable.AtomicWriteFile(shard.SpecPath(cfg.dir), append(wb, '\n'), 0o644); err != nil {
		fatal(err)
	}

	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	base := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		base, cancel = context.WithTimeout(base, cfg.timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()
	drainCh := armDrainSignals(ctx, cancel, cfg.drainTO)

	norm, err := cfg.rsv.Spec.Normalize()
	if err != nil {
		fatal(err)
	}
	probe, leaseURL, leaseSvc, leaseShutdown, err := leaseService(cfg, norm.IdentityHash())
	if err != nil {
		fatal(err)
	}
	defer leaseShutdown()

	failShard, failOff := parseShardFailpoint()
	chaosShard, chaosProfile := parseShardNetChaos()
	spawn := func(ctx context.Context, a shard.Assignment, gen int) (shard.WorkerHandle, error) {
		args := []string{
			"-shard", a.String(),
			"-shard-dir", cfg.dir,
			"-spec", shard.SpecPath(cfg.dir),
		}
		if leaseURL != "" {
			args = append(args, "-lease-url", leaseURL, "-lease-ttl", cfg.leaseTTL.String())
		}
		if cfg.quiet {
			args = append(args, "-quiet")
		}
		if cfg.faults != "" {
			args = append(args, "-fault-profile", cfg.faults)
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		cmd.Env = workerEnv(a, gen, failShard, failOff, chaosShard, chaosProfile)
		cmd.SysProcAttr = workerSysProcAttr()
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &execWorker{cmd: cmd}, nil
	}

	start := time.Now()
	res, rep, err := shard.Coordinate(ctx, shard.Config{
		Dir:         cfg.dir,
		Spec:        cfg.rsv.Spec,
		Shards:      cfg.shards,
		Spawn:       spawn,
		Registry:    leaseSvc,
		LeaseTTL:    cfg.leaseTTL,
		MaxRespawns: cfg.maxRespawns,
		Probe:       probe,
		Drain:       drainCh,
		Log:         func(f string, args ...any) { fmt.Fprintf(os.Stderr, "rhfleet: "+f+"\n", args...) },
	})
	if res != nil && rep != nil {
		fmt.Fprintf(os.Stderr, "rhfleet: coordinated %d shard(s): %d/%d job(s) recorded, %d failed in %v\n",
			cfg.shards, rep.Records, res.Total, rep.Failed, time.Since(start).Round(time.Millisecond))
	}
	if err != nil {
		switch {
		case errors.Is(err, rh.ErrCampaignDrained):
			fmt.Fprintf(os.Stderr, "rhfleet: drained; rerun `rhfleet -coordinate %d -shard-dir %s` to finish\n", cfg.shards, cfg.dir)
			return 3
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "rhfleet: interrupted (%v); rerun -coordinate to resume\n", err)
			return 3
		default:
			fmt.Fprintf(os.Stderr, "rhfleet: %v\n", err)
			return 1
		}
	}
	return emitMerged(cfg.rsv, res, rep, cfg.format, cfg.sumOut, cfg.artOut)
}

// runMergeShards is the -merge-shards mode: fold whatever shard
// checkpoints exist under dir into the campaign deliverable. Partial
// directories merge too (exit 3, coverage accounted in the summary);
// a checkpoint from a different campaign is a named, typed refusal.
func runMergeShards(dir string, rsv server.Resolved, format, sumOut, artOut string) int {
	paths, err := filepath.Glob(shard.CheckpointGlob(dir))
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no shard checkpoints (%s) found", shard.CheckpointGlob(dir)))
	}
	res, rep, err := shard.MergeShards(rsv.Spec, paths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhfleet: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "rhfleet: merged %d shard checkpoint(s): %d record(s), %d superseded, %d failed, %d missing\n",
		rep.Files, rep.Records, rep.Duplicates, rep.Failed, len(rep.Missing))
	return emitMerged(rsv, res, rep, format, sumOut, artOut)
}

// emitMerged prints and publishes a merged result exactly as the
// single-process path would: the experiment artifact (complete,
// failure-free campaigns only) or the fleet summary, published
// atomically when an output path is set. Exit codes match the
// single-process conventions: 0 complete, 3 incomplete (resumable),
// 4 quarantined coverage loss, 1 failed jobs.
func emitMerged(rsv server.Resolved, res *campaign.Result, rep *shard.MergeReport, format, sumOut, artOut string) int {
	if rsv.Exp != nil {
		if !rep.Complete() || rep.Failed > 0 {
			fmt.Fprintf(os.Stderr, "rhfleet: experiment artifact not published: %d job(s) missing, %d failed\n",
				len(rep.Missing), rep.Failed)
			if !rep.Complete() {
				return 3
			}
			return 1
		}
		if err := publishArtifact(*rsv.Exp, res, format, artOut); err != nil {
			fatal(err)
		}
		return 0
	}
	summary, err := campaign.Aggregate(res).MarshalIndent()
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(summary))
	if sumOut != "" && rep.Complete() {
		if err := durable.AtomicWriteFile(sumOut, append(summary, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	switch {
	case !rep.Complete():
		return 3
	case quarantinedCount(res) > 0:
		return 4
	case rep.Failed > 0:
		return 1
	}
	return 0
}

func quarantinedCount(res *campaign.Result) int {
	n := 0
	for _, rec := range res.Records {
		if rec.Quarantined {
			n++
		}
	}
	return n
}

// execWorker adapts an exec'd rhfleet -shard subprocess to the
// coordinator's WorkerHandle.
type execWorker struct{ cmd *exec.Cmd }

func (w *execWorker) Wait() error { return w.cmd.Wait() }
func (w *execWorker) Kill() {
	if p := w.cmd.Process; p != nil {
		p.Kill()
	}
}

// Drain forwards the coordinator's graceful shutdown: SIGTERM
// triggers the worker's own drain path (finish in-flight jobs, flush
// the checkpoint, exit 3).
func (w *execWorker) Drain() {
	if p := w.cmd.Process; p != nil {
		p.Signal(syscall.SIGTERM)
	}
}

// parseShardFailpoint reads RHFLEET_SHARD_FAILPOINT="i:off" — the
// crash-drill seam: arm RHFLEET_FAILPOINT=off on shard i's
// generation-0 worker only, so the drill kills exactly one worker at
// an exact checkpoint byte and the reassigned generation runs clean.
func parseShardFailpoint() (shardIdx int, off string) {
	v := os.Getenv("RHFLEET_SHARD_FAILPOINT")
	i, rest, ok := strings.Cut(v, ":")
	if !ok {
		return -1, ""
	}
	idx, err := strconv.Atoi(i)
	if err != nil || idx < 0 || rest == "" {
		return -1, ""
	}
	return idx, rest
}

// parseShardNetChaos reads RHFLEET_SHARD_NETCHAOS="i:profile" — the
// network chaos drill seam, shaped exactly like the failpoint seam:
// arm RHFLEET_NETCHAOS=profile on shard i's generation-0 worker only,
// so one worker rides out (or dies under) a deterministic partition
// while its reassigned generation runs on a clean network.
func parseShardNetChaos() (shardIdx int, profile string) {
	v := os.Getenv("RHFLEET_SHARD_NETCHAOS")
	i, rest, ok := strings.Cut(v, ":")
	if !ok {
		return -1, ""
	}
	idx, err := strconv.Atoi(i)
	if err != nil || idx < 0 || rest == "" {
		return -1, ""
	}
	return idx, rest
}

// workerEnv builds a shard worker's environment: the coordinator's
// own drill variables are stripped (a coordinator under drill must
// not arm every worker), then the per-shard failpoint and network
// chaos profile are armed on their targeted generation-0 workers.
func workerEnv(a shard.Assignment, gen, failShard int, failOff string, chaosShard int, chaosProfile string) []string {
	env := make([]string, 0, len(os.Environ())+2)
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, "RHFLEET_FAILPOINT=") || strings.HasPrefix(kv, "RHFLEET_SHARD_FAILPOINT=") ||
			strings.HasPrefix(kv, "RHFLEET_NETCHAOS=") || strings.HasPrefix(kv, "RHFLEET_SHARD_NETCHAOS=") {
			continue
		}
		env = append(env, kv)
	}
	if a.Index == failShard && gen == 0 && failOff != "" {
		env = append(env, "RHFLEET_FAILPOINT="+failOff)
	}
	if a.Index == chaosShard && gen == 0 && chaosProfile != "" {
		env = append(env, "RHFLEET_NETCHAOS="+chaosProfile)
	}
	return env
}
