//go:build unix

package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"rowhammer/internal/shard"
)

// The multi-process kill-anywhere drill: SIGKILL random shard workers
// mid-checkpoint-write (and the coordinator itself), and require the
// reassigned, resumed run to converge to a summary byte-identical to
// a single-process run. Tests are named TestCrashShard* so they ride
// `make crash` with the rest of the kill-anywhere suite.

func coordArgs(dir, sum string, shards int) []string {
	return []string{"-coordinate", fmt.Sprint(shards), "-shard-dir", dir,
		"-mfrs", "A,B,C,D", "-modules", "4", "-exp", "hcfirst", "-scale", "tiny",
		"-seed", "7", "-quiet", "-lease-ttl", "2s", "-summary", sum}
}

// runCoord executes a coordinator with optional extra env, returning
// (exitCode, killedBySIGKILL, stderr).
func runCoord(t *testing.T, env []string, args ...string) (int, bool, string) {
	t.Helper()
	cmd := exec.Command(fleetBinary(t), args...)
	cmd.Env = append(os.Environ(), env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, false, stderr.String()
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("rhfleet did not run: %v", err)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok {
		t.Fatalf("no wait status: %v", err)
	}
	if ws.Signaled() {
		return -1, ws.Signal() == syscall.SIGKILL, stderr.String()
	}
	return ws.ExitStatus(), false, stderr.String()
}

// TestCrashShardWorkerKillReassign SIGKILLs one shard worker
// mid-checkpoint-write at several byte offsets (via the
// RHFLEET_SHARD_FAILPOINT seam). The coordinator must see the death,
// reassign the shard's remaining jobs to a fresh worker, and publish
// a summary byte-identical to the single-process run.
func TestCrashShardWorkerKillReassign(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real subprocesses")
	}
	// Single-process reference.
	refDir := t.TempDir()
	refSumPath := filepath.Join(refDir, "sum.json")
	refArgs := []string{"-mfrs", "A,B,C,D", "-modules", "4", "-exp", "hcfirst", "-scale", "tiny",
		"-seed", "7", "-quiet", "-out", filepath.Join(refDir, "fleet.jsonl"), "-summary", refSumPath}
	if code, killed := runFleet(t, -1, refArgs...); code != 0 || killed {
		t.Fatalf("reference run: exit %d, killed=%v", code, killed)
	}
	refSum, err := os.ReadFile(refSumPath)
	if err != nil {
		t.Fatal(err)
	}

	// Clean coordinated run: proves parity and measures a shard
	// checkpoint so the drill offsets land inside real writes.
	cleanDir := t.TempDir()
	cleanSum := filepath.Join(cleanDir, "sum.json")
	if code, killed, errOut := runCoord(t, nil, coordArgs(cleanDir, cleanSum, 4)...); code != 0 || killed {
		t.Fatalf("clean coordinated run: exit %d, killed=%v\n%s", code, killed, errOut)
	}
	cleanBytes, err := os.ReadFile(cleanSum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refSum, cleanBytes) {
		t.Fatalf("coordinated summary differs from single-process run:\n%s\nwant:\n%s", cleanBytes, refSum)
	}
	shardCkpt, err := os.ReadFile(shard.CheckpointPath(cleanDir, shard.Assignment{Index: 1, Of: 4}))
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int64{0, int64(len(shardCkpt)) / 2, int64(len(shardCkpt)) - 1} {
		dir := t.TempDir()
		sum := filepath.Join(dir, "sum.json")
		env := []string{fmt.Sprintf("RHFLEET_SHARD_FAILPOINT=1:%d", off)}
		code, killed, errOut := runCoord(t, env, coordArgs(dir, sum, 4)...)
		if code != 0 || killed {
			t.Fatalf("offset %d: coordinator failed: exit %d, killed=%v\n%s", off, code, killed, errOut)
		}
		if !strings.Contains(errOut, "signal: killed") {
			t.Fatalf("offset %d: worker was never killed — drill is vacuous\n%s", off, errOut)
		}
		// At the final byte the kill lands after every record is
		// durable, and the coordinator rightly judges the shard
		// complete; at any earlier offset records are missing and the
		// shard MUST be reassigned.
		if off < int64(len(shardCkpt))-1 && !strings.Contains(errOut, "reassigning") {
			t.Fatalf("offset %d: dead shard was not reassigned\n%s", off, errOut)
		}
		got, err := os.ReadFile(sum)
		if err != nil {
			t.Fatalf("offset %d: no summary published: %v", off, err)
		}
		if !bytes.Equal(refSum, got) {
			t.Fatalf("offset %d: reassigned summary differs from single-process run", off)
		}
	}
}

// TestCrashShardCoordinatorKillResume SIGKILLs the coordinator
// itself mid-campaign. PDEATHSIG takes the shard workers down with it
// (their leases free), and a rerun of -coordinate over the same
// directory — no flag replay, the directory's spec.json says what to
// run — must converge to the byte-identical summary.
func TestCrashShardCoordinatorKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real subprocesses")
	}
	refDir := t.TempDir()
	refSumPath := filepath.Join(refDir, "sum.json")
	refArgs := []string{"-mfrs", "A,B,C,D", "-modules", "4", "-exp", "hcfirst", "-scale", "tiny",
		"-seed", "7", "-quiet", "-out", filepath.Join(refDir, "fleet.jsonl"), "-summary", refSumPath}
	if code, killed := runFleet(t, -1, refArgs...); code != 0 || killed {
		t.Fatalf("reference run: exit %d, killed=%v", code, killed)
	}
	refSum, err := os.ReadFile(refSumPath)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sum := filepath.Join(dir, "sum.json")
	cmd := exec.Command(fleetBinary(t), coordArgs(dir, sum, 4)...)
	cmd.Env = os.Environ()
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill the coordinator as soon as the first shard checkpoint
	// exists — mid-campaign for any realistic timing, and even a
	// late kill still drills the idempotent-restart path.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m, _ := filepath.Glob(shard.CheckpointGlob(dir)); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("no shard checkpoint appeared\n%s", stderr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// PDEATHSIG: the orphaned workers must die with the coordinator,
	// freeing every shard lease.
	leaseDeadline := time.Now().Add(5 * time.Second)
	for {
		held := 0
		for _, a := range shard.Partition(4) {
			if p, err := shard.ProbeLease(shard.LeasePath(dir, a)); err == nil && p.Held {
				held++
			}
		}
		if held == 0 {
			break
		}
		if time.Now().After(leaseDeadline) {
			t.Fatalf("%d shard lease(s) still held after coordinator SIGKILL — workers orphaned", held)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart: spec.json in the directory carries the campaign.
	code, killed, errOut := runCoord(t, nil, "-coordinate", "4", "-shard-dir", dir, "-quiet",
		"-lease-ttl", "2s", "-summary", sum)
	if code != 0 || killed {
		t.Fatalf("coordinator restart: exit %d, killed=%v\n%s", code, killed, errOut)
	}
	got, err := os.ReadFile(sum)
	if err != nil {
		t.Fatalf("no summary after restart: %v", err)
	}
	if !bytes.Equal(refSum, got) {
		t.Fatalf("post-crash summary differs from single-process run:\n%s\nwant:\n%s", got, refSum)
	}
}

// TestCrashShardMergeRejectsForeignCampaign smuggles a shard
// checkpoint from a different campaign into a shard directory and
// requires -merge-shards to refuse with an error naming the file.
func TestCrashShardMergeRejectsForeignCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real subprocesses")
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	sumA, sumB := filepath.Join(dirA, "s.json"), filepath.Join(dirB, "s.json")
	if code, killed, errOut := runCoord(t, nil, coordArgs(dirA, sumA, 2)...); code != 0 || killed {
		t.Fatalf("campaign A: exit %d killed=%v\n%s", code, killed, errOut)
	}
	argsB := coordArgs(dirB, sumB, 2)
	argsB = append(argsB, "-seed", "1234") // later flag wins: different campaign identity
	if code, killed, errOut := runCoord(t, nil, argsB...); code != 0 || killed {
		t.Fatalf("campaign B: exit %d killed=%v\n%s", code, killed, errOut)
	}
	// Replace A's shard 1 with B's.
	a1 := shard.CheckpointPath(dirA, shard.Assignment{Index: 1, Of: 2})
	b1, err := os.ReadFile(shard.CheckpointPath(dirB, shard.Assignment{Index: 1, Of: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a1, b1, 0o644); err != nil {
		t.Fatal(err)
	}
	code, killed, errOut := runCoord(t, nil, "-merge-shards", "-shard-dir", dirA, "-quiet")
	if killed || code != 1 {
		t.Fatalf("merge of mixed campaigns: exit %d killed=%v, want 1\n%s", code, killed, errOut)
	}
	if !strings.Contains(errOut, a1) || !strings.Contains(errOut, "different campaign") {
		t.Fatalf("merge error must name the offending shard file:\n%s", errOut)
	}
}
