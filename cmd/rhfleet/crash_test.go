//go:build unix

package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"testing"

	"rowhammer/internal/durable"
)

var (
	buildOnce sync.Once
	fleetBin  string
	buildErr  error
)

// fleetBinary builds the real rhfleet binary once per test run: the
// crash suite kills and resumes the shipped artifact, not a test
// harness approximation of it.
func fleetBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rhfleet-crash-*")
		if err != nil {
			buildErr = err
			return
		}
		fleetBin = filepath.Join(dir, "rhfleet")
		if out, err := exec.Command("go", "build", "-o", fleetBin, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build rhfleet: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return fleetBin
}

func fleetArgs(ckpt, sum string) []string {
	return []string{"-mfrs", "A,B", "-modules", "2", "-exp", "hcfirst", "-scale", "tiny",
		"-seed", "7", "-quiet", "-out", ckpt, "-summary", sum}
}

// runFleet executes rhfleet and reports (exitCode, killedBySIGKILL).
func runFleet(t *testing.T, failpoint int64, args ...string) (int, bool) {
	t.Helper()
	cmd := exec.Command(fleetBinary(t), args...)
	cmd.Env = os.Environ()
	if failpoint >= 0 {
		cmd.Env = append(cmd.Env, "RHFLEET_FAILPOINT="+strconv.FormatInt(failpoint, 10))
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		return 0, false
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("rhfleet did not run: %v", err)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok {
		t.Fatalf("no wait status for rhfleet: %v", err)
	}
	if ws.Signaled() {
		if ws.Signal() != syscall.SIGKILL {
			t.Fatalf("rhfleet died on unexpected signal %v\n%s", ws.Signal(), stderr.Bytes())
		}
		return -1, true
	}
	return ws.ExitStatus(), false
}

// TestCrashRhfleetKillResume SIGKILLs the real rhfleet binary
// mid-checkpoint-write at several byte offsets (via the
// RHFLEET_FAILPOINT seam), resumes each run with -resume, and requires
// the published summary to be bit-identical to an uninterrupted run's.
func TestCrashRhfleetKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real subprocesses")
	}
	refDir := t.TempDir()
	refCkpt := filepath.Join(refDir, "fleet.jsonl")
	refSumPath := filepath.Join(refDir, "summary.json")
	if code, killed := runFleet(t, -1, fleetArgs(refCkpt, refSumPath)...); code != 0 || killed {
		t.Fatalf("reference run: exit %d, killed=%v", code, killed)
	}
	refSum, err := os.ReadFile(refSumPath)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(refCkpt)
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int64{0, int64(len(full)) / 3, 2 * int64(len(full)) / 3, int64(len(full)) - 1} {
		dir := t.TempDir()
		ckpt := filepath.Join(dir, "fleet.jsonl")
		sum := filepath.Join(dir, "summary.json")
		if _, killed := runFleet(t, off, fleetArgs(ckpt, sum)...); !killed {
			t.Fatalf("offset %d: rhfleet survived its failpoint", off)
		}
		if _, err := os.Stat(sum); !os.IsNotExist(err) {
			t.Fatalf("offset %d: a killed run must not publish a summary", off)
		}
		resumeArgs := append(fleetArgs(ckpt, sum), "-resume", ckpt)
		if code, killed := runFleet(t, -1, resumeArgs...); code != 0 || killed {
			t.Fatalf("offset %d: resume: exit %d, killed=%v", off, code, killed)
		}
		got, err := os.ReadFile(sum)
		if err != nil {
			t.Fatalf("offset %d: summary not published after resume: %v", off, err)
		}
		if !bytes.Equal(refSum, got) {
			t.Fatalf("offset %d: resumed summary differs from uninterrupted run", off)
		}
	}
}

// expFleetArgs runs a paper experiment (not a measurement kind)
// through rhfleet with fault injection active: the experiment-generic
// engine path must survive the same kill-anywhere treatment as the
// measurement cores.
func expFleetArgs(ckpt, art string) []string {
	return []string{"-exp", "fig5", "-scale", "tiny", "-seed", "7", "-quiet",
		"-fault-profile", "transient+seed=3", "-retries", "4",
		"-out", ckpt, "-artifact", art}
}

// TestCrashRhfleetExpKillResume SIGKILLs rhfleet mid-checkpoint-write
// while it runs the fig5 *experiment* campaign (one job per shard,
// transient fault injection active), resumes each run, and requires
// the published merged artifact to be bit-identical to an
// uninterrupted run's — the experiment pipeline inherits the engine's
// kill-anywhere guarantee, not just the measurement kinds.
func TestCrashRhfleetExpKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real subprocesses")
	}
	refDir := t.TempDir()
	refCkpt := filepath.Join(refDir, "fig5.jsonl")
	refArt := filepath.Join(refDir, "fig5.artifact.json")
	if code, killed := runFleet(t, -1, expFleetArgs(refCkpt, refArt)...); code != 0 || killed {
		t.Fatalf("reference run: exit %d, killed=%v", code, killed)
	}
	refBytes, err := os.ReadFile(refArt)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(refCkpt)
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int64{0, int64(len(full)) / 2, int64(len(full)) - 1} {
		dir := t.TempDir()
		ckpt := filepath.Join(dir, "fig5.jsonl")
		art := filepath.Join(dir, "fig5.artifact.json")
		if _, killed := runFleet(t, off, expFleetArgs(ckpt, art)...); !killed {
			t.Fatalf("offset %d: rhfleet survived its failpoint", off)
		}
		if _, err := os.Stat(art); !os.IsNotExist(err) {
			t.Fatalf("offset %d: a killed run must not publish an artifact", off)
		}
		resumeArgs := append(expFleetArgs(ckpt, art), "-resume", ckpt)
		if code, killed := runFleet(t, -1, resumeArgs...); code != 0 || killed {
			t.Fatalf("offset %d: resume: exit %d, killed=%v", off, code, killed)
		}
		got, err := os.ReadFile(art)
		if err != nil {
			t.Fatalf("offset %d: artifact not published after resume: %v", off, err)
		}
		if !bytes.Equal(refBytes, got) {
			t.Fatalf("offset %d: resumed artifact differs from uninterrupted run", off)
		}
	}
}

// TestCrashRhfleetLockExclusion holds the checkpoint's advisory lock
// and requires a second rhfleet to refuse to start rather than
// interleave writes.
func TestCrashRhfleetLockExclusion(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.jsonl")
	lock, err := durable.AcquireLock(ckpt + ".lock")
	if err != nil {
		t.Fatal(err)
	}
	defer lock.Release()
	code, killed := runFleet(t, -1, fleetArgs(ckpt, filepath.Join(dir, "summary.json"))...)
	if killed || code != 1 {
		t.Fatalf("locked checkpoint: exit %d, killed=%v; want exit 1", code, killed)
	}
}
