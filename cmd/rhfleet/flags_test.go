package main

import (
	"strings"
	"testing"
)

// TestValidateModeFlags pins the full mode-flag matrix: one role per
// process, each role's required companions, and one-line errors for
// every illegal mix.
func TestValidateModeFlags(t *testing.T) {
	cases := []struct {
		name string
		f    modeFlags
		want string // "" = legal; otherwise a substring of the error
	}{
		{"plain campaign", modeFlags{}, ""},
		{"shard worker", modeFlags{shard: "2/8", shardDir: "d"}, ""},
		{"shard worker with remote leases", modeFlags{shard: "2/8", shardDir: "d", leaseURL: "http://h:1"}, ""},
		{"coordinator", modeFlags{coordinate: 4, shardDir: "d"}, ""},
		{"coordinator self-hosting leases", modeFlags{coordinate: 4, shardDir: "d", leaseListen: "127.0.0.1:0"}, ""},
		{"coordinator against external leases", modeFlags{coordinate: 4, shardDir: "d", leaseURL: "http://h:1"}, ""},
		{"merge", modeFlags{mergeShards: true, shardDir: "d"}, ""},
		{"fleet worker", modeFlags{worker: true, leaseURL: "http://h:1"}, ""},
		{"fleet worker with id and slots", modeFlags{worker: true, leaseURL: "http://h:1", workerIDSet: true, slotsSet: true}, ""},

		{"shard and coordinate", modeFlags{shard: "1/2", coordinate: 2, shardDir: "d"}, "mutually exclusive"},
		{"shard and merge", modeFlags{shard: "1/2", mergeShards: true, shardDir: "d"}, "mutually exclusive"},
		{"coordinate and merge", modeFlags{coordinate: 2, mergeShards: true, shardDir: "d"}, "mutually exclusive"},
		{"worker and shard", modeFlags{worker: true, shard: "1/2", shardDir: "d", leaseURL: "u"}, "mutually exclusive"},
		{"worker and coordinate", modeFlags{worker: true, coordinate: 2, shardDir: "d", leaseURL: "u"}, "mutually exclusive"},
		{"all four roles", modeFlags{shard: "1/2", coordinate: 2, mergeShards: true, worker: true}, "mutually exclusive"},

		{"shard without dir", modeFlags{shard: "1/2"}, "require -shard-dir"},
		{"coordinate without dir", modeFlags{coordinate: 2}, "require -shard-dir"},
		{"merge without dir", modeFlags{mergeShards: true}, "require -shard-dir"},

		{"worker without lease url", modeFlags{worker: true}, "requires -lease-url"},
		{"worker with shard dir", modeFlags{worker: true, leaseURL: "u", shardDir: "d"}, "drop -shard-dir"},

		{"lease-listen without coordinate", modeFlags{leaseListen: "127.0.0.1:0"}, "requires -coordinate"},
		{"lease-listen on a shard worker", modeFlags{shard: "1/2", shardDir: "d", leaseListen: ":0"}, "requires -coordinate"},
		{"lease-listen and lease-url", modeFlags{coordinate: 2, shardDir: "d", leaseListen: ":0", leaseURL: "u"}, "mutually exclusive"},

		{"worker-id without worker", modeFlags{workerIDSet: true}, "requires -worker"},
		{"slots without worker", modeFlags{slotsSet: true}, "requires -worker"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateModeFlags(tc.f)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("usage errors must be one line, got %q", err)
			}
		})
	}
}
