//go:build linux

package main

import "syscall"

// workerSysProcAttr ties shard workers to the coordinator with
// PDEATHSIG: if the coordinator is SIGKILLed, the kernel kills its
// workers too, so a restarted coordinator never races orphans for the
// shard leases.
func workerSysProcAttr() *syscall.SysProcAttr {
	return &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
