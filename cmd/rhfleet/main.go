// Command rhfleet runs fleet-scale characterization campaigns: many
// module instances per manufacturer, measured in parallel on a bounded
// worker pool, with JSONL checkpointing so an interrupted campaign
// resumes exactly where it stopped — and, because aggregation is
// order-independent, produces a bit-identical fleet summary.
//
// -exp accepts both the built-in per-module measurement kinds
// (hcfirst, ber, wcdp, spatial) and any paper experiment ID from
// `rhchar -list` (fig5, table3, def1, ...): experiment campaigns run
// one job per experiment shard through the same engine — worker pool,
// retry/backoff, circuit breaker, fault injection, watchdog,
// checkpoint/resume — and publish the experiment's merged artifact,
// bit-identical to `rhchar -format json` at the same scale and seed.
//
// Usage:
//
//	rhfleet -mfrs A,B,C,D -modules 16 -exp hcfirst -workers 8 -out fleet.jsonl
//	rhfleet -exp ber -modules 8 -out ber.jsonl -summary ber-summary.json
//	rhfleet -resume fleet.jsonl -mfrs A,B,C,D -modules 16 -exp hcfirst -out fleet.jsonl
//	rhfleet -exp fig5 -scale tiny -out fig5.jsonl -artifact fig5.artifact.json
//	rhfleet -spec campaign.json
//	rhfleet -exp hcfirst -modules 8 -fault-profile chaos -retries 4 -breaker 3
//	rhfleet -compact -out fleet.jsonl
//	rhfleet -worker -lease-url http://10.0.0.1:8077 -worker-id w1 -slots 2
//
// -worker joins the placement layer's fleet: the process registers
// with the lease service at -lease-url (a coordinator's -lease-listen
// or an rhserved), heartbeats, and runs whatever shard placements the
// scheduler assigns — each under the shard's fenced lease, resolving
// its campaign from the spec.json persisted in the placement's shard
// directory. No campaign flags apply; one worker serves any number of
// campaigns over its lifetime.
//
// Checkpoints are written in the crash-safe v2 format (self-describing
// header + CRC32C per record, fsynced per record); resume verifies the
// checkpoint belongs to this campaign and quarantines corrupt interior
// lines to a .corrupt sidecar instead of aborting. An advisory lock on
// <out>.lock keeps two rhfleet processes from interleaving writes. The
// first SIGINT/SIGTERM drains gracefully (dispatch stops, in-flight
// jobs finish, checkpoint flushed); a second signal aborts hard.
//
// Exit codes: 0 success; 1 error; 2 usage; 3 interrupted or drained —
// resumable with -resume; 4 partial result with quarantined modules
// (summary carries explicit coverage accounting).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	rh "rowhammer"
	"rowhammer/internal/campaign"
	"rowhammer/internal/durable"
	"rowhammer/internal/exp"
	"rowhammer/internal/inject"
	"rowhammer/internal/profiling"
	"rowhammer/internal/server"
	"rowhammer/internal/shard"
)

// stopProfiles finishes any active pprof profiles; releaseLock drops
// the advisory checkpoint lock. Every termination path (fatal,
// fatalUsage, exit) routes through both because os.Exit skips
// deferred calls.
var (
	stopProfiles = func() {}
	releaseLock  = func() {}
)

func exit(code int) {
	releaseLock()
	stopProfiles()
	os.Exit(code)
}

func main() {
	var (
		mfrs    = flag.String("mfrs", "A,B,C,D", "comma-separated manufacturer profiles (measurement kinds; experiment campaigns shard themselves)")
		modules = flag.Int("modules", 4, "module instances per manufacturer (measurement kinds only)")
		expKind = flag.String("exp", "hcfirst", "measurement kind ("+strings.Join(rh.CampaignKinds(), ", ")+") or a paper experiment id (rhchar -list)")
		seed    = flag.Uint64("seed", rh.DefaultSeed, "master seed (module seeds derive from it)")
		scale   = flag.String("scale", "default", "measurement scale: tiny, default, paper")
		temps   = flag.String("temps", "", "comma-separated BER temperature grid in °C (default: 50-90 in 5° steps)")
		workers = flag.Int("workers", 0, "worker pool size (0 = one per CPU)")
		retries = flag.Int("retries", 1, "retries per failed job")
		timeout = flag.Duration("timeout", 0, "abort the campaign after this duration (0 = no limit)")
		jobTO   = flag.Duration("job-timeout", 0, "deadline per job attempt (0 = none)")
		backoff = flag.Duration("retry-backoff", 0, "base of the exponential retry backoff with deterministic jitter (0 = retry immediately)")
		breaker = flag.Int("breaker", 0, "quarantine a module after N consecutive failed attempts (0 = breaker off)")
		wdog    = flag.Int("watchdog", 0, "abandon a job attempt after N×job-timeout without heartbeat and requeue it (0 = watchdog off; requires -job-timeout)")
		drainTO = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs after the first SIGINT/SIGTERM before a hard abort")
		compact = flag.Bool("compact", false, "rewrite the -out checkpoint to one deduplicated record per job, then exit")
		faults  = flag.String("fault-profile", "", "deterministic fault injection: none, transient, latency, drift, chaos, dead=MFR/IDX[,...], combined with + (e.g. chaos+dead=A/0+seed=7)")
		out     = flag.String("out", "fleet.jsonl", "JSONL checkpoint output path")
		resume  = flag.String("resume", "", "resume from a JSONL checkpoint (skips completed jobs)")
		sumOut  = flag.String("summary", "", "also write the fleet summary JSON to this path (measurement kinds)")
		artOut  = flag.String("artifact", "", "publish the merged experiment artifact atomically to this path (experiment kinds)")
		format  = flag.String("format", "json", "experiment artifact output format: json, tsv, text")
		specIn  = flag.String("spec", "", "load the campaign spec from a JSON file (flags above are ignored)")
		quiet   = flag.Bool("quiet", false, "suppress per-job progress on stderr")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")

		shardDir    = flag.String("shard-dir", "", "shard directory for -shard/-coordinate/-merge-shards (checkpoints, leases, spec.json)")
		shardArg    = flag.String("shard", "", "run one shard worker: i/N (e.g. 2/8); requires -shard-dir")
		coordinate  = flag.Int("coordinate", 0, "coordinate an N-way sharded run: spawn N rhfleet -shard workers over -shard-dir, reassign dead shards, merge")
		mergeShards = flag.Bool("merge-shards", false, "merge the shard checkpoints in -shard-dir into one summary/artifact, then exit")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "coordinator: kill a shard worker whose lease heartbeat is older than this")
		maxRespawn  = flag.Int("max-respawns", 3, "coordinator: give up on a shard after this many reassignments")
		leaseURL    = flag.String("lease-url", "", "lease service base URL (e.g. http://10.0.0.1:8077): shard ownership moves from local flock to fenced remote leases — workers may run on other hosts")
		leaseListen = flag.String("lease-listen", "", "coordinator: self-host the lease service on this address (e.g. 127.0.0.1:0) and hand its URL to spawned workers")
		workerMode  = flag.Bool("worker", false, "join the fleet: register with the placement layer at -lease-url and run whatever shard placements its scheduler assigns")
		workerID    = flag.String("worker-id", "", "worker: registration ID (default host:pid); re-using an ID supersedes the previous holder")
		slots       = flag.Int("slots", 1, "worker: shard placements to run concurrently")
		netChaos    = flag.String("net-chaos", "", "worker: deterministic network fault injection on the lease client: none, flaky, partition=FROM:FOR, drop=R, oneway=R, err=R, latency=R:D, seed=N, maxops=N, combined with +")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of rhfleet:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
Exit codes:
  0  campaign complete
  1  error
  2  usage error
  3  interrupted, drained or timed out — resume with -resume <checkpoint>
  4  partial result: modules quarantined by the circuit breaker; the
     summary's "coverage" block names the lost coverage

The first SIGINT/SIGTERM drains: dispatch stops, in-flight jobs finish
(bounded by -drain-timeout), the checkpoint is flushed, and rhfleet
exits 3. A second signal aborts immediately. <out>.lock serializes
rhfleet processes per checkpoint.
`)
	}
	flag.Parse()

	stopProf, perr := profiling.Start(*cpuProf, *memProf)
	if perr != nil {
		fatalUsage(perr)
	}
	stopProfiles = stopProf
	defer stopProfiles()

	if *format != "json" && *format != "tsv" && *format != "text" {
		fatalUsage(fmt.Errorf("unknown artifact format %q (json, tsv, text)", *format))
	}
	profile, err := rh.ParseFaultProfile(*faults)
	if err != nil {
		fatalUsage(err)
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := validateModeFlags(modeFlags{
		shard: *shardArg, coordinate: *coordinate, mergeShards: *mergeShards,
		worker: *workerMode, shardDir: *shardDir,
		leaseURL: *leaseURL, leaseListen: *leaseListen,
		workerIDSet: explicit["worker-id"], slotsSet: explicit["slots"],
	}); err != nil {
		fatalUsage(err)
	}
	// A fleet worker has no campaign of its own — every placement it is
	// handed resolves its spec from the placement's shard directory —
	// so it dispatches before any spec is built.
	if *workerMode {
		exit(runFleetWorker(fleetWorkerCfg{
			id: *workerID, slots: *slots,
			leaseURL: *leaseURL, leaseTTL: *leaseTTL, netChaos: *netChaos,
			profile: profile, seed: *seed,
			quiet: *quiet, timeout: *timeout, drainTO: *drainTO,
		}))
	}
	shardMode := *shardArg != "" || *coordinate > 0 || *mergeShards
	// Shard modes default to the directory's persisted spec, so a
	// restarted coordinator (or a hand-run worker or merge) needs no
	// flag replay: the directory says what campaign it holds.
	if shardMode && *specIn == "" {
		if p := shard.SpecPath(*shardDir); fileExists(p) {
			*specIn = p
		}
	}
	ws, err := buildWireSpec(*specIn, *mfrs, *modules, *expKind, *seed, *scale, *temps,
		*workers, *retries, *jobTO, *backoff, *breaker, *wdog)
	if err != nil {
		fatal(err)
	}
	spec, err := ws.CampaignSpec()
	if err != nil {
		fatal(err)
	}

	// Resolve the engine spec and runner through the shared resolution
	// the campaign server uses — measurement kinds win bare-name
	// collisions, the exp: prefix forces the experiment, and all
	// validation happens here, before touching the output file: a
	// typo'd -exp must not truncate an existing checkpoint.
	rsv, rerr := server.Resolve(spec)
	if rerr != nil {
		fatal(rerr)
	}
	cs, runner, expE := rsv.Spec, rsv.Runner, rsv.Exp

	// Distributed modes run over -shard-dir and never touch -out.
	switch {
	case *shardArg != "":
		exit(runShardWorker(shardWorkerConfig{
			assignment: *shardArg, dir: *shardDir, rsv: rsv, profile: profile,
			quiet: *quiet, timeout: *timeout, drainTO: *drainTO,
			leaseURL: *leaseURL, leaseTTL: *leaseTTL, netChaos: *netChaos,
		}))
	case *coordinate > 0:
		exit(runCoordinator(coordinatorConfig{
			dir: *shardDir, shards: *coordinate, wire: ws, rsv: rsv,
			faults: *faults, quiet: *quiet, timeout: *timeout, drainTO: *drainTO,
			leaseTTL: *leaseTTL, maxRespawns: *maxRespawn,
			leaseURL: *leaseURL, leaseListen: *leaseListen,
			format: *format, sumOut: *sumOut, artOut: *artOut,
		}))
	case *mergeShards:
		exit(runMergeShards(*shardDir, rsv, *format, *sumOut, *artOut))
	}

	// Advisory exclusivity: one rhfleet per checkpoint file. The kernel
	// drops the flock with the process, so a SIGKILLed run never leaves
	// a stale lock behind.
	lock, err := durable.AcquireLock(*out + ".lock")
	if err != nil {
		if errors.Is(err, durable.ErrLocked) {
			fatal(fmt.Errorf("checkpoint %s is in use by another rhfleet: %w", *out, err))
		}
		fatal(err)
	}
	var unlockOnce sync.Once
	releaseLock = func() { unlockOnce.Do(func() { lock.Release() }) }
	defer releaseLock()

	if *compact {
		// A v2 checkpoint is self-describing: trust its header unless the
		// user explicitly named a campaign on the command line (needed to
		// stamp a header onto a v1 file, verified against a v2 one).
		var cspec *campaign.Spec
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "mfrs", "modules", "exp", "seed", "scale", "temps", "spec":
				cspec = &cs
			}
		})
		rep, err := campaign.CompactCheckpointFile(*out, cspec)
		if err != nil {
			fatal(fmt.Errorf("compacting %s: %w", *out, err))
		}
		fmt.Fprintf(os.Stderr, "rhfleet: compacted %s: %d records kept, %d duplicate and %d corrupt line(s) dropped\n",
			*out, len(rep.Records), rep.DuplicateRecords, rep.CorruptRecords)
		exit(0)
	}

	resumeRecs := map[string]rh.CampaignRecord{}
	if *resume != "" {
		rep, err := campaign.LoadCheckpointReport(*resume, campaign.ResumeOptions{ExpectSpec: &cs})
		if err != nil {
			fatal(fmt.Errorf("loading resume checkpoint: %w", err))
		}
		resumeRecs = rep.Records
		fmt.Fprintf(os.Stderr, "rhfleet: resuming with %d checkpointed records from %s (format v%d)\n",
			len(rep.Records), *resume, rep.Version)
		if rep.DuplicateRecords > 0 {
			fmt.Fprintf(os.Stderr, "rhfleet: %d duplicate key(s) in checkpoint — latest result wins, a success is never replaced by a failure\n",
				rep.DuplicateRecords)
		}
		if rep.TornFinal {
			fmt.Fprintln(os.Stderr, "rhfleet: final checkpoint record was torn by a crash; its job will be re-run")
		}
		if rep.CorruptRecords > 0 {
			fmt.Fprintf(os.Stderr, "rhfleet: %d corrupt checkpoint line(s) quarantined to %s; their jobs will be re-run\n",
				rep.CorruptRecords, rep.QuarantinePath)
		}
	}

	// Append when resuming into the same file so the checkpoint stays a
	// complete record of the campaign; otherwise start fresh. Both paths
	// write the v2 format: header line + CRC32C per record.
	var cw *rh.CampaignCheckpointWriter
	if *resume == *out {
		cw, err = campaign.AppendCheckpoint(*out, cs)
	} else {
		cw, err = campaign.CreateCheckpoint(*out, cs)
	}
	if err != nil {
		fatal(err)
	}
	defer cw.Close()
	armFailpoint(cw)

	base := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		base, cancel = context.WithTimeout(base, *timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	drainCh := armDrainSignals(ctx, cancel, *drainTO)

	if profile != nil {
		runner = inject.WrapRunner(runner, profile)
		fmt.Fprintf(os.Stderr, "rhfleet: fault injection active: %s (seed %d)\n", profile, profile.Seed)
	}
	opts := campaign.Options{Runner: runner, Records: cw, Done: resumeRecs, Drain: drainCh}
	start := time.Now()
	if !*quiet {
		opts.Progress = func(done, total int, rec rh.CampaignRecord) {
			status := "ok"
			if rec.Err != "" {
				status = "FAILED: " + rec.Err
			}
			fmt.Fprintf(os.Stderr, "rhfleet: [%d/%d] %-24s %s (%.1fs elapsed)\n",
				done, total, rec.Key, status, time.Since(start).Seconds())
		}
	}

	res, err := campaign.Run(ctx, cs, opts)
	// Flush and close the checkpoint before publishing anything built
	// from it; a close failure is a durability failure.
	if cerr := cw.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if res != nil {
		fmt.Fprintf(os.Stderr, "rhfleet: %d run, %d resumed, %d retried, %d failed in %v\n",
			res.Completed, res.Skipped, res.Retried, res.Failed, time.Since(start).Round(time.Millisecond))
		if expE != nil {
			// Experiment campaign: the deliverable is the merged artifact,
			// and only a complete campaign publishes it — atomically, so
			// readers see the old file or the new one, never a torn one.
			if err == nil && res.Failed == 0 {
				if perr := publishArtifact(*expE, res, *format, *artOut); perr != nil {
					fatal(perr)
				}
			}
		} else {
			summary, merr := campaign.Aggregate(res).MarshalIndent()
			if merr != nil {
				fatal(merr)
			}
			fmt.Println(string(summary))
			// Only a complete campaign publishes the summary artifact, and it
			// lands atomically: readers see the old file or the new one,
			// never a torn in-between.
			if *sumOut != "" && err == nil {
				if werr := durable.AtomicWriteFile(*sumOut, append(summary, '\n'), 0o644); werr != nil {
					fatal(werr)
				}
			}
		}
	}
	if err != nil {
		switch {
		case errors.Is(err, rh.ErrCampaignDrained):
			fmt.Fprintf(os.Stderr, "rhfleet: drained; checkpoint flushed — resume with -resume %s\n", *out)
			exit(3)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "rhfleet: interrupted (%v); resume with -resume %s\n", err, *out)
			exit(3)
		case res != nil && res.Quarantined > 0:
			fmt.Fprintf(os.Stderr, "rhfleet: partial result: %d jobs quarantined (modules %s); coverage accounting is in the summary\n",
				res.Quarantined, strings.Join(res.QuarantinedModules(), ", "))
			exit(4)
		default:
			fatal(err)
		}
	}
	exit(0)
}

// publishArtifact merges the experiment records, prints the artifact
// in the requested format, and — when a path is given — publishes the
// same bytes atomically via the durability layer.
func publishArtifact(e exp.Experiment, res *campaign.Result, format, path string) error {
	a, err := exp.MergeFleet(e, res.Records)
	if err != nil {
		return err
	}
	var payload []byte
	switch format {
	case "json":
		if payload, err = a.Encode(); err != nil {
			return err
		}
	case "tsv":
		payload = a.EncodeTSV()
	case "text":
		var buf bytes.Buffer
		if err := e.Render(&buf, a); err != nil {
			return err
		}
		payload = buf.Bytes()
	}
	os.Stdout.Write(payload)
	if path != "" {
		if err := durable.AtomicWriteFile(path, payload, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rhfleet: published %s (%d bytes)\n", path, len(payload))
	}
	return nil
}

// armDrainSignals installs the two-stage shutdown: the first
// SIGINT/SIGTERM closes the returned drain channel (dispatch stops,
// in-flight jobs finish under drainTO), the second — or the drain
// deadline — aborts hard via cancel.
func armDrainSignals(ctx context.Context, cancel context.CancelFunc, drainTO time.Duration) <-chan struct{} {
	drainCh := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer signal.Stop(sigCh)
		select {
		case s := <-sigCh:
			fmt.Fprintf(os.Stderr, "rhfleet: %v: draining — dispatch stopped, in-flight jobs get %v (signal again to abort now)\n", s, drainTO)
			close(drainCh)
			t := time.NewTimer(drainTO)
			defer t.Stop()
			select {
			case s = <-sigCh:
				fmt.Fprintf(os.Stderr, "rhfleet: %v: aborting\n", s)
			case <-t.C:
				fmt.Fprintln(os.Stderr, "rhfleet: drain deadline exceeded; aborting")
			case <-ctx.Done():
				return
			}
			cancel()
		case <-ctx.Done():
		}
	}()
	return drainCh
}

// buildWireSpec assembles the campaign's wire spec from a JSON file
// or flags. The file schema is the server's wire Spec — the same JSON
// submits to rhserved's POST /v1/campaigns unchanged — and the wire
// form is what a shard coordinator persists as spec.json for its
// workers.
func buildWireSpec(specPath, mfrs string, modules int, kind string, seed uint64, scale, temps string,
	workers, retries int, jobTO, backoff time.Duration, breaker, wdog int) (server.Spec, error) {
	var ws server.Spec
	if specPath != "" {
		b, err := os.ReadFile(specPath)
		if err != nil {
			return ws, err
		}
		if err := json.Unmarshal(b, &ws); err != nil {
			return ws, fmt.Errorf("parsing %s: %w", specPath, err)
		}
		return ws, nil
	}
	ws = server.Spec{
		Kind:             kind,
		ModulesPerMfr:    modules,
		Seed:             seed,
		Scale:            scale,
		Workers:          workers,
		MaxRetries:       retries,
		JobTimeoutMS:     jobTO.Milliseconds(),
		RetryBackoffMS:   backoff.Milliseconds(),
		BreakerThreshold: breaker,
		WatchdogFactor:   wdog,
	}
	for _, m := range strings.Split(mfrs, ",") {
		if m = strings.TrimSpace(m); m != "" {
			ws.Mfrs = append(ws.Mfrs, m)
		}
	}
	if temps != "" {
		for _, t := range strings.Split(temps, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
			if err != nil {
				return ws, fmt.Errorf("bad -temps value %q: %w", t, err)
			}
			ws.Temps = append(ws.Temps, v)
		}
	}
	return ws, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rhfleet: %v\n", err)
	exit(1)
}

func fatalUsage(err error) {
	fmt.Fprintf(os.Stderr, "rhfleet: %v\n", err)
	exit(2)
}
