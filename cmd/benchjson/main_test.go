package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckSchema(t *testing.T) {
	cases := []struct {
		name   string
		doc    map[string]any
		wantOK bool
	}{
		{"legacy file without schema", map[string]any{"benchmarks": map[string]any{}}, true},
		{"current version", map[string]any{"schema": float64(schemaVersion)}, true},
		{"future version", map[string]any{"schema": float64(schemaVersion + 1)}, false},
		{"non-numeric version", map[string]any{"schema": "v1"}, false},
	}
	for _, c := range cases {
		if err := checkSchema(c.doc); (err == nil) != c.wantOK {
			t.Errorf("%s: checkSchema = %v, want ok=%v", c.name, err, c.wantOK)
		}
	}
}

func TestBenchNameRegexp(t *testing.T) {
	cases := []struct {
		line       string
		name       string
		iters      string
		wantTail   string
		shouldskip bool
	}{
		{
			line:     "BenchmarkCampaignFleet/workers=1-8   \t       2\t 792291484 ns/op\t     40.39 jobs/sec",
			name:     "BenchmarkCampaignFleet/workers=1",
			iters:    "2",
			wantTail: "792291484 ns/op",
		},
		{
			line:     "BenchmarkHammerThroughput 300 3997829 ns/op 256166348 activations/s",
			name:     "BenchmarkHammerThroughput",
			iters:    "300",
			wantTail: "3997829 ns/op",
		},
		{line: "goos: linux", shouldskip: true},
		{line: "PASS", shouldskip: true},
		{line: "ok  \trowhammer\t12.3s", shouldskip: true},
	}
	for _, c := range cases {
		m := benchName.FindStringSubmatch(c.line)
		if c.shouldskip {
			if m != nil {
				t.Errorf("line %q unexpectedly matched", c.line)
			}
			continue
		}
		if m == nil {
			t.Errorf("line %q did not match", c.line)
			continue
		}
		if m[1] != c.name || m[2] != c.iters {
			t.Errorf("line %q parsed as name=%q iters=%q, want %q/%q", c.line, m[1], m[2], c.name, c.iters)
		}
	}
}

func TestParseBenchOutput(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkCampaignFleet/workers=1-8   2   792291484 ns/op   40.39 jobs/sec
BenchmarkHammerThroughput 300 3997829 ns/op 256166348 activations/s
PASS
`)
	var echo bytes.Buffer
	got, err := parseBenchOutput(in, &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	fleet := got["CampaignFleet/workers=1"]
	if fleet.Iterations != 2 || fleet.Metrics["ns/op"] != 792291484 || fleet.Metrics["jobs/sec"] != 40.39 {
		t.Fatalf("fleet entry = %+v", fleet)
	}
	if !strings.Contains(echo.String(), "goos: linux") || !strings.Contains(echo.String(), "PASS") {
		t.Fatalf("non-benchmark lines not echoed: %q", echo.String())
	}
}

func TestLowerIsBetter(t *testing.T) {
	cases := []struct {
		unit           string
		lower, tracked bool
	}{
		{"ns/op", true, true},
		{"B/op", true, true},
		{"allocs/op", true, true},
		{"jobs/sec", false, true},
		{"activations/s", false, true},
		{"widgets", false, false}, // unknown unit: never gates CI
	}
	for _, c := range cases {
		lower, tracked := lowerIsBetter(c.unit)
		if lower != c.lower || tracked != c.tracked {
			t.Errorf("lowerIsBetter(%q) = %v,%v want %v,%v", c.unit, lower, tracked, c.lower, c.tracked)
		}
	}
}

func TestBestFoldsDirectionAware(t *testing.T) {
	b := best([]map[string]entry{
		{"X": {Metrics: map[string]float64{"ns/op": 100, "jobs/sec": 40}}},
		{"X": {Metrics: map[string]float64{"ns/op": 80, "jobs/sec": 30}}},
	})
	if b["X"]["ns/op"] != 80 {
		t.Errorf("best ns/op = %v, want the min (80)", b["X"]["ns/op"])
	}
	if b["X"]["jobs/sec"] != 40 {
		t.Errorf("best jobs/sec = %v, want the max (40)", b["X"]["jobs/sec"])
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := map[string]map[string]float64{
		"X": {"ns/op": 100, "jobs/sec": 40},
	}
	cases := []struct {
		name    string
		current map[string]entry
		wantReg int
		wantCmp int
	}{
		{"within threshold", map[string]entry{
			"X": {Metrics: map[string]float64{"ns/op": 105, "jobs/sec": 38}}}, 0, 2},
		{"time regression", map[string]entry{
			"X": {Metrics: map[string]float64{"ns/op": 120, "jobs/sec": 40}}}, 1, 2},
		{"rate regression", map[string]entry{
			"X": {Metrics: map[string]float64{"ns/op": 100, "jobs/sec": 30}}}, 1, 2},
		{"improvement is not a regression", map[string]entry{
			"X": {Metrics: map[string]float64{"ns/op": 50, "jobs/sec": 80}}}, 0, 2},
		{"new benchmark has no baseline", map[string]entry{
			"Y": {Metrics: map[string]float64{"ns/op": 1}}}, 0, 0},
	}
	for _, c := range cases {
		regs, compared := compare(c.current, baseline, 0.10)
		if len(regs) != c.wantReg || compared != c.wantCmp {
			t.Errorf("%s: %d regression(s), %d compared; want %d, %d (regs: %+v)",
				c.name, len(regs), compared, c.wantReg, c.wantCmp, regs)
		}
	}
}

// TestCompareZeroCostBaseline pins the allocs/op floor: a committed
// 0 allocs/op baseline is a hard gate (any nonzero current value
// regresses), while a zero rate baseline stays uncomparable.
func TestCompareZeroCostBaseline(t *testing.T) {
	baseline := map[string]map[string]float64{
		"Hot": {"allocs/op": 0, "B/op": 0, "jobs/sec": 0},
	}
	regs, compared := compare(map[string]entry{
		"Hot": {Metrics: map[string]float64{"allocs/op": 3, "B/op": 0, "jobs/sec": 10}},
	}, baseline, 0.10)
	if compared != 2 {
		t.Fatalf("compared %d metrics, want 2 (allocs/op and B/op; zero jobs/sec baseline is uncomparable)", compared)
	}
	if len(regs) != 1 || regs[0].Unit != "allocs/op" {
		t.Fatalf("regressions = %+v, want exactly the allocs/op floor violation", regs)
	}
	regs, compared = compare(map[string]entry{
		"Hot": {Metrics: map[string]float64{"allocs/op": 0, "B/op": 0}},
	}, baseline, 0.10)
	if compared != 2 || len(regs) != 0 {
		t.Fatalf("staying at zero must pass: %d compared, regs %+v", compared, regs)
	}
}

// TestRunCompareEndToEnd drives the -compare path over real files:
// a current run 25% slower than the best committed baseline must fail
// with an output naming the benchmark, and the identical run must
// pass. A baseline set sharing no benchmark names is a vacuous gate
// and must also fail.
func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	baseline := write("BENCH_a.json", `{
  "schema": 1,
  "baselines": {"note": "free-text survives", "Fleet": {"metrics": {"jobs/sec": 44, "ns/op": 200}}},
  "benchmarks": {"Fleet": {"iterations": 20, "metrics": {"jobs/sec": 100, "ns/op": 100}}}
}`)
	slow := write("current-slow.json", `{"schema": 1, "benchmarks": {"Fleet": {"metrics": {"jobs/sec": 100, "ns/op": 125}}}}`)
	same := write("current-same.json", `{"schema": 1, "benchmarks": {"Fleet": {"metrics": {"jobs/sec": 100, "ns/op": 100}}}}`)
	other := write("current-other.json", `{"schema": 1, "benchmarks": {"Elsewhere": {"metrics": {"ns/op": 1}}}}`)

	var out bytes.Buffer
	if code := runCompare(slow, []string{baseline}, 0.10, &out); code != 1 {
		t.Fatalf("25%% ns/op regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION Fleet ns/op") {
		t.Fatalf("regression output does not name the benchmark/metric:\n%s", out.String())
	}
	out.Reset()
	if code := runCompare(same, []string{baseline}, 0.10, &out); code != 0 {
		t.Fatalf("identical run failed the gate:\n%s", out.String())
	}
	out.Reset()
	if code := runCompare(other, []string{baseline}, 0.10, &out); code != 1 {
		t.Fatalf("vacuous gate (no overlap) must fail:\n%s", out.String())
	}
}
