package main

import "testing"

func TestCheckSchema(t *testing.T) {
	cases := []struct {
		name   string
		doc    map[string]any
		wantOK bool
	}{
		{"legacy file without schema", map[string]any{"benchmarks": map[string]any{}}, true},
		{"current version", map[string]any{"schema": float64(schemaVersion)}, true},
		{"future version", map[string]any{"schema": float64(schemaVersion + 1)}, false},
		{"non-numeric version", map[string]any{"schema": "v1"}, false},
	}
	for _, c := range cases {
		if err := checkSchema(c.doc); (err == nil) != c.wantOK {
			t.Errorf("%s: checkSchema = %v, want ok=%v", c.name, err, c.wantOK)
		}
	}
}

func TestBenchNameRegexp(t *testing.T) {
	cases := []struct {
		line       string
		name       string
		iters      string
		wantTail   string
		shouldskip bool
	}{
		{
			line:     "BenchmarkCampaignFleet/workers=1-8   \t       2\t 792291484 ns/op\t     40.39 jobs/sec",
			name:     "BenchmarkCampaignFleet/workers=1",
			iters:    "2",
			wantTail: "792291484 ns/op",
		},
		{
			line:     "BenchmarkHammerThroughput 300 3997829 ns/op 256166348 activations/s",
			name:     "BenchmarkHammerThroughput",
			iters:    "300",
			wantTail: "3997829 ns/op",
		},
		{line: "goos: linux", shouldskip: true},
		{line: "PASS", shouldskip: true},
		{line: "ok  \trowhammer\t12.3s", shouldskip: true},
	}
	for _, c := range cases {
		m := benchName.FindStringSubmatch(c.line)
		if c.shouldskip {
			if m != nil {
				t.Errorf("line %q unexpectedly matched", c.line)
			}
			continue
		}
		if m == nil {
			t.Errorf("line %q did not match", c.line)
			continue
		}
		if m[1] != c.name || m[2] != c.iters {
			t.Errorf("line %q parsed as name=%q iters=%q, want %q/%q", c.line, m[1], m[2], c.name, c.iters)
		}
	}
}
