// Command benchjson converts `go test -bench` text output into a
// stable JSON document for benchmark-regression tracking, and checks
// a fresh run against committed baselines.
//
// Record mode (default):
//
//	go test -bench 'HammerThroughput|CampaignFleet' -run '^$' . | benchjson -o BENCH_pr3.json
//
// Each benchmark line becomes one entry keyed by its name (the
// trailing -GOMAXPROCS suffix is stripped) holding ns/op plus any
// custom metrics the benchmark reported (jobs/sec, activations/s,
// B/op, allocs/op, ...). If the output file already exists, its
// "baselines" key is preserved so a committed pre-change baseline
// survives regeneration.
//
// Compare mode (the `make bench-check` trend gate):
//
//	benchjson -compare bench-current.json -threshold 0.10 BENCH_*.json
//
// Every metric of every benchmark in the current document is compared
// against the best value found anywhere in the baseline documents
// (their "benchmarks" and "baselines" sections both count). The
// comparison is direction-aware — ns/op, B/op and allocs/op regress
// upward, rate units (jobs/sec, activations/s) regress downward — and
// any metric more than threshold (fraction) worse than the best
// baseline is a regression: benchjson prints it and exits 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"rowhammer/internal/durable"
)

// benchLine matches e.g.
//
//	BenchmarkCampaignFleet/workers=1-8   2   792291484 ns/op   40.39 jobs/sec
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

type entry struct {
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// schemaVersion stamps emitted documents. Reading a previous file with
// a different (present) version is an error: regression tooling must
// not silently mix layouts. A file without the key is a legacy
// document and its baselines are still honored.
const schemaVersion = 1

// checkSchema validates a previous document's schema version.
func checkSchema(old map[string]any) error {
	v, ok := old["schema"]
	if !ok {
		return nil // legacy file, pre-versioning
	}
	f, ok := v.(float64)
	if !ok || f != schemaVersion {
		return fmt.Errorf("unknown schema version %v (this benchjson writes v%d)", v, schemaVersion)
	}
	return nil
}

// parseBenchOutput scans `go test -bench` text, returning one entry
// per benchmark. Non-benchmark lines are echoed to echo (the pipe
// stays observable).
func parseBenchOutput(r io.Reader, echo io.Writer) (map[string]entry, error) {
	benches := map[string]entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchName.FindStringSubmatch(line)
		if m == nil {
			fmt.Fprintln(echo, sc.Text())
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		e := entry{Iterations: iters, Metrics: map[string]float64{}}
		// The tail alternates value/unit pairs: "792291484 ns/op 40.39 jobs/sec".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			e.Metrics[fields[i+1]] = v
		}
		benches[strings.TrimPrefix(m[1], "Benchmark")] = e
	}
	return benches, sc.Err()
}

// loadDoc reads one BENCH JSON document, returning its benchmark
// sections. Entries that do not parse (the baselines "note" string,
// for example) are skipped, not fatal.
func loadDoc(path string) (benchmarks, baselines map[string]entry, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var old map[string]any
	if err := json.Unmarshal(raw, &old); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := checkSchema(old); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	var doc struct {
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
		Baselines  map[string]json.RawMessage `json:"baselines"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	parse := func(m map[string]json.RawMessage) map[string]entry {
		out := map[string]entry{}
		for name, rawE := range m {
			var e entry
			if json.Unmarshal(rawE, &e) == nil && len(e.Metrics) > 0 {
				out[name] = e
			}
		}
		return out
	}
	return parse(doc.Benchmarks), parse(doc.Baselines), nil
}

// lowerIsBetter classifies a metric unit's regression direction.
// Costs (time, bytes, allocations) regress upward; rates (anything
// per second) regress downward. Unknown units are not tracked —
// failing CI on a unit nobody classified would make adding a new
// custom metric a breaking change.
func lowerIsBetter(unit string) (lower, tracked bool) {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true, true
	}
	if strings.HasSuffix(unit, "/s") || strings.HasSuffix(unit, "/sec") {
		return false, true
	}
	return false, false
}

// best folds a set of baseline sections into the best value seen for
// each (benchmark, metric), honoring the metric's direction.
func best(sections []map[string]entry) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, sec := range sections {
		for name, e := range sec {
			for unit, v := range e.Metrics {
				lower, tracked := lowerIsBetter(unit)
				if !tracked {
					continue
				}
				m, ok := out[name]
				if !ok {
					m = map[string]float64{}
					out[name] = m
				}
				prev, seen := m[unit]
				if !seen || (lower && v < prev) || (!lower && v > prev) {
					m[unit] = v
				}
			}
		}
	}
	return out
}

// regression is one metric that moved more than the threshold in the
// wrong direction.
type regression struct {
	Bench, Unit string
	Best, Got   float64
	// Ratio is how much worse Got is than Best, as a fraction
	// (0.25 = 25% worse), regardless of direction.
	Ratio float64
}

// compare checks every tracked metric of current against the best
// baseline value. It returns the regressions beyond threshold and the
// number of metric comparisons actually made — zero means the gate is
// vacuous (no overlapping benchmarks) and the caller should fail.
func compare(current map[string]entry, baseline map[string]map[string]float64, threshold float64) (regs []regression, compared int) {
	names := make([]string, 0, len(current))
	for n := range current {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		base, ok := baseline[name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		units := make([]string, 0, len(current[name].Metrics))
		for u := range current[name].Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			lower, tracked := lowerIsBetter(unit)
			bestV, haveBase := base[unit]
			// A zero rate baseline cannot be compared against; a zero
			// cost baseline (0 allocs/op, 0 B/op) is a hard floor and
			// stays tracked.
			if !tracked || !haveBase || (!lower && bestV == 0) {
				continue
			}
			got := current[name].Metrics[unit]
			compared++
			var ratio float64
			switch {
			case lower && bestV == 0:
				if got > 0 {
					ratio = math.Inf(1)
				}
			case lower:
				ratio = got/bestV - 1
			default:
				ratio = 1 - got/bestV
			}
			if ratio > threshold {
				regs = append(regs, regression{Bench: name, Unit: unit, Best: bestV, Got: got, Ratio: ratio})
			}
		}
	}
	return regs, compared
}

// runCompare is the -compare entry point: current against the best of
// the baseline files. Returns the process exit code.
func runCompare(currentPath string, baselinePaths []string, threshold float64, out io.Writer) int {
	if len(baselinePaths) == 0 {
		fmt.Fprintln(out, "benchjson: -compare needs baseline files as arguments (e.g. BENCH_*.json)")
		return 1
	}
	current, _, err := loadDoc(currentPath)
	if err != nil {
		fmt.Fprintf(out, "benchjson: %v\n", err)
		return 1
	}
	var sections []map[string]entry
	for _, p := range baselinePaths {
		benchmarks, baselines, err := loadDoc(p)
		if err != nil {
			fmt.Fprintf(out, "benchjson: %v\n", err)
			return 1
		}
		sections = append(sections, benchmarks, baselines)
	}
	regs, compared := compare(current, best(sections), threshold)
	if compared == 0 {
		fmt.Fprintf(out, "benchjson: no overlapping benchmarks between %s and %s — the gate checked nothing\n",
			currentPath, strings.Join(baselinePaths, ", "))
		return 1
	}
	for _, r := range regs {
		fmt.Fprintf(out, "benchjson: REGRESSION %s %s: %.6g vs best baseline %.6g (%.1f%% worse, threshold %.1f%%)\n",
			r.Bench, r.Unit, r.Got, r.Best, r.Ratio*100, threshold*100)
	}
	if len(regs) > 0 {
		return 1
	}
	fmt.Fprintf(out, "benchjson: %d metric(s) within %.1f%% of the best committed baseline\n", compared, threshold*100)
	return 0
}

func main() {
	out := flag.String("o", "", "output JSON path (default: stdout)")
	comparePath := flag.String("compare", "", "compare this BENCH JSON against the baseline files given as arguments; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.10, "regression threshold as a fraction (with -compare)")
	flag.Parse()

	if *comparePath != "" {
		os.Exit(runCompare(*comparePath, flag.Args(), *threshold, os.Stderr))
	}

	doc := map[string]any{"schema": schemaVersion}
	if *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			var old map[string]any
			if json.Unmarshal(prev, &old) == nil {
				if err := checkSchema(old); err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
					os.Exit(1)
				}
				if base, ok := old["baselines"]; ok {
					doc["baselines"] = base
				}
			}
		}
	}

	benches, err := parseBenchOutput(os.Stdin, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	doc["benchmarks"] = benches

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	// Atomic publication: a BENCH file consumed by regression tooling
	// must never be observable half-written.
	if err := durable.AtomicWriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (%s)\n", len(benches), *out, strings.Join(names, ", "))
}
