// Command benchjson converts `go test -bench` text output into a
// stable JSON document for benchmark-regression tracking.
//
// Usage:
//
//	go test -bench 'HammerThroughput|CampaignFleet' -run '^$' . | benchjson -o BENCH_pr3.json
//
// Each benchmark line becomes one entry keyed by its name (the
// trailing -GOMAXPROCS suffix is stripped) holding ns/op plus any
// custom metrics the benchmark reported (jobs/sec, activations/s,
// B/op, allocs/op, ...). If the output file already exists, its
// "baselines" key is preserved so a committed pre-change baseline
// survives regeneration.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"rowhammer/internal/durable"
)

// benchLine matches e.g.
//
//	BenchmarkCampaignFleet/workers=1-8   2   792291484 ns/op   40.39 jobs/sec
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

type entry struct {
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// schemaVersion stamps emitted documents. Reading a previous file with
// a different (present) version is an error: regression tooling must
// not silently mix layouts. A file without the key is a legacy
// document and its baselines are still honored.
const schemaVersion = 1

// checkSchema validates a previous document's schema version.
func checkSchema(old map[string]any) error {
	v, ok := old["schema"]
	if !ok {
		return nil // legacy file, pre-versioning
	}
	f, ok := v.(float64)
	if !ok || f != schemaVersion {
		return fmt.Errorf("unknown schema version %v (this benchjson writes v%d)", v, schemaVersion)
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output JSON path (default: stdout)")
	flag.Parse()

	doc := map[string]any{"schema": schemaVersion}
	if *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			var old map[string]any
			if json.Unmarshal(prev, &old) == nil {
				if err := checkSchema(old); err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
					os.Exit(1)
				}
				if base, ok := old["baselines"]; ok {
					doc["baselines"] = base
				}
			}
		}
	}

	benches := map[string]entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchName.FindStringSubmatch(line)
		if m == nil {
			// Echo non-benchmark lines so the pipe stays observable.
			fmt.Fprintln(os.Stderr, sc.Text())
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		e := entry{Iterations: iters, Metrics: map[string]float64{}}
		// The tail alternates value/unit pairs: "792291484 ns/op 40.39 jobs/sec".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			e.Metrics[fields[i+1]] = v
		}
		benches[strings.TrimPrefix(m[1], "Benchmark")] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	doc["benchmarks"] = benches

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	// Atomic publication: a BENCH file consumed by regression tooling
	// must never be observable half-written.
	if err := durable.AtomicWriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (%s)\n", len(benches), *out, strings.Join(names, ", "))
}
