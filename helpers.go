package rowhammer

import (
	"math/bits"

	"rowhammer/internal/dram"
	"rowhammer/internal/softmc"
)

// tz64 returns the index of the lowest set bit.
func tz64(v uint64) int { return bits.TrailingZeros64(v) }

// newBuilder returns a program builder clocked at the timing's tCK.
func newBuilder(tm dram.Timing) *softmc.Builder { return softmc.NewBuilder(tm.TCK) }

// rowFiller batches full-row pattern writes into one program.
type rowFiller struct {
	t    *Tester
	bank int
	pat  dram.PatternKind
	bld  *softmc.Builder
}

func newRowFiller(t *Tester, bank int, pat dram.PatternKind) *rowFiller {
	return &rowFiller{t: t, bank: bank, pat: pat, bld: newBuilder(t.b.Timing())}
}

// fill writes the pattern into a row addressed by *logical* index,
// labeled with the given distance for Table 1 parity selection.
func (f *rowFiller) fill(logical, dist int) {
	g := f.t.b.Geometry()
	tm := f.t.b.Timing()
	f.bld.Act(f.bank, logical).Wait(tm.TRCD)
	for col := 0; col < g.ColumnsPerRow; col++ {
		f.bld.Wr(f.bank, col, f.pat.FillWord(f.t.patternSeed, f.bank, logical, dist, col))
		f.bld.Wait(tm.TCCD)
	}
	f.bld.Wait(tm.TRAS).Pre(f.bank).Wait(tm.TRP)
}

// run executes the accumulated writes.
func (f *rowFiller) run() error {
	_, err := f.t.b.Exec.Run(f.bld.Program())
	return err
}
