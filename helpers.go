package rowhammer

import (
	"math/bits"

	"rowhammer/internal/dram"
	"rowhammer/internal/softmc"
)

// tz64 returns the index of the lowest set bit.
func tz64(v uint64) int { return bits.TrailingZeros64(v) }

// newBuilder returns a program builder clocked at the timing's tCK.
func newBuilder(tm dram.Timing) *softmc.Builder { return softmc.NewBuilder(tm.TCK) }

// rowFiller batches full-row pattern writes into one program.
type rowFiller struct {
	t    *Tester
	bank int
	pat  dram.PatternKind
	bld  *softmc.Builder
}

func newRowFiller(t *Tester, bank int, pat dram.PatternKind) *rowFiller {
	return &rowFiller{t: t, bank: bank, pat: pat, bld: newBuilder(t.b.Timing())}
}

// fill writes the pattern into a row addressed by *logical* index,
// labeled with the given distance for Table 1 parity selection. The
// column burst is issued as one bulk WrRow (bit-identical to the
// per-command sequence).
func (f *rowFiller) fill(logical, dist int) {
	g := f.t.b.Geometry()
	tm := f.t.b.Timing()
	f.bld.Act(f.bank, logical).Wait(tm.TRCD)
	words := make([]uint64, g.ColumnsPerRow)
	f.t.fillRow(words, f.bank, logical, dist, f.pat)
	f.bld.WrRow(f.bank, words, tm.TCCD)
	f.bld.Wait(tm.TRAS).Pre(f.bank).Wait(tm.TRP)
}

// run executes the accumulated writes.
func (f *rowFiller) run() error {
	_, err := f.t.b.Exec.Run(f.bld.Program())
	return err
}
