package rowhammer

import (
	"fmt"

	"rowhammer/internal/dram"
)

// Logical→physical mapping recovery (§4.2): DRAM-internal row
// remapping is reverse engineered by single-sided hammering each row
// and observing which two rows flip the most — those are the
// physically adjacent rows. The recovered adjacency is then matched
// against candidate mapping schemes.

// revmapHammers is the hammer count used for adjacency probing: large
// enough that physically adjacent rows of even the strongest module
// flip reliably.
const revmapHammers = 400_000

// AdjacencyProbe single-sided hammers the given logical row and
// returns the logical addresses of the two rows with the most bit
// flips (the inferred physical neighbors), among candidates within
// ±window logical rows.
func (t *Tester) AdjacencyProbe(bank, logicalRow, window int) ([]int, error) {
	g := t.b.Geometry()
	tm := t.b.Timing()

	// Initialize the window with a pattern that maximizes coupling for
	// both cell orientations.
	lo := logicalRow - window
	hi := logicalRow + window
	if lo < 0 {
		lo = 0
	}
	if hi >= g.RowsPerBank {
		hi = g.RowsPerBank - 1
	}
	pat := dram.PatCheckered
	bld := newRowFiller(t, bank, pat)
	for l := lo; l <= hi; l++ {
		// Fill by *logical* row here: physical identity is unknown to
		// the procedure. Use distance parity from the hammered row so
		// the aggressor's data maximizes coupling regardless of the
		// true physical interleaving.
		bld.fill(l, l-logicalRow)
	}
	if err := bld.run(); err != nil {
		return nil, err
	}

	// Single-sided hammer.
	hb := newBuilder(tm)
	hb.Hammer(bank, []int{logicalRow}, revmapHammers, tm.TRAS, tm.TRP)
	if _, err := t.b.Exec.Run(hb.Program()); err != nil {
		return nil, err
	}

	// Read every row in the window, count flips.
	type rowFlips struct{ row, flips int }
	var counts []rowFlips
	for l := lo; l <= hi; l++ {
		if l == logicalRow {
			continue
		}
		fs, err := t.readLogicalRowFlips(bank, l, l-logicalRow, pat)
		if err != nil {
			return nil, err
		}
		counts = append(counts, rowFlips{row: l, flips: fs.Count()})
	}
	// Top two.
	best, second := -1, -1
	for i, c := range counts {
		if best < 0 || c.flips > counts[best].flips {
			second = best
			best = i
		} else if second < 0 || c.flips > counts[second].flips {
			second = i
		}
	}
	var out []int
	if best >= 0 && counts[best].flips > 0 {
		out = append(out, counts[best].row)
	}
	if second >= 0 && counts[second].flips > 0 {
		out = append(out, counts[second].row)
	}
	return out, nil
}

// readLogicalRowFlips reads a row by logical address and diffs it
// against the pattern written for the given distance label.
func (t *Tester) readLogicalRowFlips(bank, logical, dist int, pat dram.PatternKind) (FlipSet, error) {
	g := t.b.Geometry()
	tm := t.b.Timing()
	bld := newBuilder(tm)
	bld.Act(bank, logical).Wait(tm.TRCD)
	bld.RdRow(bank, g.ColumnsPerRow, tm.TCCD)
	bld.Wait(tm.TRAS).Pre(bank).Wait(tm.TRP)
	res, err := t.b.Exec.Run(bld.Program())
	if err != nil {
		return FlipSet{}, err
	}
	var flips FlipSet
	for col, got := range res.Reads {
		want := pat.FillWord(t.patternSeed, bank, logical, dist, col)
		diff := got ^ want
		for diff != 0 {
			flips.Bits = append(flips.Bits, col*64+tz64(diff))
			diff &= diff - 1
		}
	}
	return flips, nil
}

// CandidateSchemes are the mapping schemes RecoverMapping tests
// against measured adjacency, covering the behaviors observed across
// the four manufacturers.
func CandidateSchemes() []dram.RemapScheme {
	return []dram.RemapScheme{dram.DirectRemap{}, dram.MirrorRemap{}, dram.DefaultScramble()}
}

// RecoverMapping probes the adjacency of the given logical rows and
// returns the candidate scheme consistent with every observation. It
// then installs the recovered scheme in the Tester.
func (t *Tester) RecoverMapping(bank int, probeRows []int, window int) (dram.RemapScheme, error) {
	type probe struct {
		row       int
		neighbors []int
	}
	var probes []probe
	for _, r := range probeRows {
		n, err := t.AdjacencyProbe(bank, r, window)
		if err != nil {
			return nil, err
		}
		if len(n) == 0 {
			return nil, fmt.Errorf("rowhammer: adjacency probe of row %d found no victims", r)
		}
		probes = append(probes, probe{row: r, neighbors: n})
	}

	for _, scheme := range CandidateSchemes() {
		ok := true
		for _, p := range probes {
			phys := scheme.ToPhysical(p.row)
			for _, n := range p.neighbors {
				np := scheme.ToPhysical(n)
				if np != phys-1 && np != phys+1 {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			t.UseMapping(scheme)
			return scheme, nil
		}
	}
	return nil, fmt.Errorf("rowhammer: no candidate scheme matches measured adjacency")
}

// RecoverMappingTable reverse engineers the mapping of a contiguous
// block of logical rows without assuming any candidate scheme: every
// row in [blockStart, blockStart+blockLen) is adjacency-probed and
// the resulting graph is reconstructed into a physical ordering
// (rows form a path in physical space). The block must map onto a
// contiguous physical block whose base is blockStart's — true for
// group-local remappings like the ones observed in real chips.
//
// The recovered TableRemap is installed in the Tester and returned.
func (t *Tester) RecoverMappingTable(bank, blockStart, blockLen int) (dram.RemapScheme, error) {
	if blockLen < 3 {
		return nil, fmt.Errorf("rowhammer: block of %d rows too small to orient", blockLen)
	}
	adjacency := make(map[int][]int, blockLen)
	for l := blockStart; l < blockStart+blockLen; l++ {
		ns, err := t.AdjacencyProbe(bank, l, blockLen)
		if err != nil {
			return nil, err
		}
		// Keep only in-block neighbors: edge rows of the block see one
		// out-of-block neighbor, which the path reconstruction must
		// not include.
		var inBlock []int
		for _, n := range ns {
			if n >= blockStart && n < blockStart+blockLen {
				inBlock = append(inBlock, n)
			}
		}
		adjacency[l] = inBlock
	}
	order, err := dram.ReconstructOrder(adjacency)
	if err != nil {
		return nil, fmt.Errorf("rowhammer: adjacency reconstruction: %w", err)
	}
	table, err := dram.TableFromOrder(order, blockStart, t.b.Geometry().RowsPerBank)
	if err != nil {
		return nil, err
	}
	t.UseMapping(table)
	return table, nil
}
