package rowhammer

import "fmt"

// HCFirstAccuracy is the binary-search resolution of HCfirst
// measurements: 512 row activations, as in §4.2.
const HCFirstAccuracy = 512

// hcFirstStart is the paper's initial probe hammer count.
const hcFirstStart = 256_000

// HCFirstResult reports the minimum hammer count at which a victim row
// first shows a bit flip.
type HCFirstResult struct {
	// HCfirst is the measured minimum hammer count; valid only when
	// Found.
	HCfirst int64
	// Found is false when the row shows no flips up to MaxHammers.
	Found bool
	// Probes counts the binary-search tests performed.
	Probes int
}

// HCFirstConfig configures an HCfirst search.
type HCFirstConfig struct {
	Bank       int
	VictimPhys int
	// MaxHammers caps the search (paper: 512K, < 64 ms of hammering).
	MaxHammers int64
	AggOnNs    float64
	AggOffNs   float64
	Pattern    PatternKind
	Trial      uint64
}

// HCFirst finds the minimum hammer count producing at least one bit
// flip in the victim row, using the paper's binary search: start at
// 256K hammers, step Δ=128K, halving Δ after every probe until it
// reaches 512.
func (t *Tester) HCFirst(cfg HCFirstConfig) (HCFirstResult, error) {
	if cfg.MaxHammers <= 0 {
		cfg.MaxHammers = 512_000
	}
	var out HCFirstResult

	var res HammerResult // reused across probes
	probe := func(hc int64) (bool, error) {
		out.Probes++
		err := t.HammerInto(HammerConfig{
			Bank:       cfg.Bank,
			VictimPhys: cfg.VictimPhys,
			Hammers:    hc,
			AggOnNs:    cfg.AggOnNs,
			AggOffNs:   cfg.AggOffNs,
			Pattern:    cfg.Pattern,
			Trial:      cfg.Trial,
		}, &res)
		if err != nil {
			return false, err
		}
		return res.Victim.Count() > 0, nil
	}

	hc := int64(hcFirstStart)
	if hc > cfg.MaxHammers {
		hc = cfg.MaxHammers
	}
	lowestFail := int64(-1)
	for delta := int64(128_000); delta >= HCFirstAccuracy; delta /= 2 {
		flipped, err := probe(hc)
		if err != nil {
			return out, fmt.Errorf("rowhammer: HCfirst probe at %d: %w", hc, err)
		}
		if flipped {
			if lowestFail < 0 || hc < lowestFail {
				lowestFail = hc
			}
			hc -= delta
			if hc < HCFirstAccuracy {
				hc = HCFirstAccuracy
			}
		} else {
			hc += delta
			if hc > cfg.MaxHammers {
				hc = cfg.MaxHammers
			}
		}
	}
	// Final probe at the converged point.
	flipped, err := probe(hc)
	if err != nil {
		return out, err
	}
	if flipped && (lowestFail < 0 || hc < lowestFail) {
		lowestFail = hc
	}
	if lowestFail < 0 {
		return out, nil
	}
	out.HCfirst = lowestFail
	out.Found = true
	return out, nil
}

// HCFirstMin repeats the search over the given trial numbers and
// returns the minimum HCfirst found (the paper repeats each test five
// times and keeps the minimum).
func (t *Tester) HCFirstMin(cfg HCFirstConfig, repetitions int) (HCFirstResult, error) {
	if repetitions < 1 {
		repetitions = 1
	}
	t.declareTrialSalts(repetitions)
	var best HCFirstResult
	for rep := 0; rep < repetitions; rep++ {
		c := cfg
		c.Trial = uint64(rep) + 1
		res, err := t.HCFirst(c)
		if err != nil {
			return best, err
		}
		best.Probes += res.Probes
		if res.Found && (!best.Found || res.HCfirst < best.HCfirst) {
			best.Found = true
			best.HCfirst = res.HCfirst
		}
	}
	return best, nil
}
