package rowhammer

import "fmt"

// DefaultSeed is the master seed every measurement layer defaults to.
const DefaultSeed uint64 = 0x5eed

// TempStepError is the typed rejection of a malformed temperature
// sweep: a non-positive step (which would loop forever building the
// grid, or silently produce an empty sweep when lo > hi) or a grid
// whose points do not strictly increase.
type TempStepError struct {
	// Lo, Hi, Step describe the rejected grid request; for a
	// ready-made grid, Lo and Hi are the offending adjacent points and
	// Step their (non-positive) difference.
	Lo, Hi, Step float64
	// Index is the grid position of the offending step (-1 when the
	// error comes from grid construction rather than validation).
	Index int
}

func (e *TempStepError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("rowhammer: temperature grid step %d is not increasing (%g°C then %g°C, step %g): the sweep would be empty or repeat points",
			e.Index, e.Lo, e.Hi, e.Step)
	}
	return fmt.Sprintf("rowhammer: temperature step %g°C over [%g, %g]°C must be positive: a zero or negative step never reaches the upper bound",
		e.Step, e.Lo, e.Hi)
}

// TempGrid builds the inclusive temperature grid lo, lo+step, ... hi.
// A non-positive step is rejected with a *TempStepError instead of
// looping forever (lo < hi) or silently yielding an empty sweep
// (lo > hi); so is an inverted range.
func TempGrid(lo, hi, step float64) ([]float64, error) {
	if step <= 0 || hi < lo {
		return nil, &TempStepError{Lo: lo, Hi: hi, Step: step, Index: -1}
	}
	var out []float64
	for t := lo; t <= hi; t += step {
		out = append(out, t)
	}
	return out, nil
}

// ValidateTempGrid rejects a ready-made temperature grid whose points
// do not strictly increase — the descending or duplicated grids that
// used to slip through normalization and surface as nonsense sweep
// bitmasks — with a *TempStepError naming the offending step.
func ValidateTempGrid(temps []float64) error {
	for i := 1; i < len(temps); i++ {
		if step := temps[i] - temps[i-1]; step <= 0 {
			return &TempStepError{Lo: temps[i-1], Hi: temps[i], Step: step, Index: i}
		}
	}
	return nil
}

// StudyTemps returns the paper's tested temperature grid:
// 50–90 °C in 5 °C steps.
func StudyTemps() []float64 {
	out, err := TempGrid(50, 90, 5)
	if err != nil {
		panic(err) // unreachable: the study grid is a constant
	}
	return out
}

// FillMeasureDefaults is the single normalization helper behind every
// default-filling path (exp.Config, MeasureScope, campaign spec
// lowering, CLI flag resolution): a zero Scale becomes DefaultScale(),
// a zero Geometry becomes DefaultDDR4Geometry(), a zero seed becomes
// DefaultSeed, and an empty temperature grid becomes StudyTemps().
// A nil pointer skips that knob, so callers normalize exactly the
// fields they own.
//
// A caller-supplied temperature grid is validated, not trusted: a grid
// with a zero or negative step between points is rejected with a
// *TempStepError — the only error this helper can return, so call
// sites that pass a nil temps knob cannot fail.
func FillMeasureDefaults(scale *Scale, geom *Geometry, seed *uint64, temps *[]float64) error {
	if scale != nil && *scale == (Scale{}) {
		*scale = DefaultScale()
	}
	if geom != nil && *geom == (Geometry{}) {
		*geom = DefaultDDR4Geometry()
	}
	if seed != nil && *seed == 0 {
		*seed = DefaultSeed
	}
	if temps != nil {
		if len(*temps) == 0 {
			*temps = StudyTemps()
		} else if err := ValidateTempGrid(*temps); err != nil {
			return err
		}
	}
	return nil
}

// TinyScale returns the CI-friendly measurement scale the CLIs expose
// as -scale tiny (matching internal/exp's test scale).
func TinyScale() Scale {
	return Scale{RowsPerRegion: 10, Regions: 2, Hammers: 150_000, MaxHammers: 512_000, Repetitions: 1, ModulesPerMfr: 2}
}

// TinyGeometry returns the reduced geometry paired with TinyScale.
func TinyGeometry() Geometry {
	return Geometry{Banks: 1, RowsPerBank: 512, SubarrayRows: 128, Chips: 8, ChipWidth: 8, ColumnsPerRow: 32}
}

// PaperGeometry returns the full-size geometry paired with
// PaperScale.
func PaperGeometry() Geometry {
	return Geometry{Banks: 4, RowsPerBank: 65536, SubarrayRows: 512, Chips: 8, ChipWidth: 8, ColumnsPerRow: 128}
}

// NamedScale resolves the scale names shared by the rhchar and
// rhfleet CLIs ("tiny", "default", "paper"). A zero Geometry return
// means "use the defaults"; ok is false for unknown names.
func NamedScale(name string) (scale Scale, geom Geometry, ok bool) {
	switch name {
	case "tiny":
		return TinyScale(), TinyGeometry(), true
	case "default":
		return DefaultScale(), Geometry{}, true
	case "paper":
		return PaperScale(), PaperGeometry(), true
	}
	return Scale{}, Geometry{}, false
}
