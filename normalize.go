package rowhammer

// DefaultSeed is the master seed every measurement layer defaults to.
const DefaultSeed uint64 = 0x5eed

// FillMeasureDefaults is the single normalization helper behind every
// default-filling path (exp.Config, MeasureScope, campaign spec
// lowering, CLI flag resolution): a zero Scale becomes DefaultScale(),
// a zero Geometry becomes DefaultDDR4Geometry(), a zero seed becomes
// DefaultSeed, and an empty temperature grid becomes StudyTemps().
// A nil pointer skips that knob, so callers normalize exactly the
// fields they own.
func FillMeasureDefaults(scale *Scale, geom *Geometry, seed *uint64, temps *[]float64) {
	if scale != nil && *scale == (Scale{}) {
		*scale = DefaultScale()
	}
	if geom != nil && *geom == (Geometry{}) {
		*geom = DefaultDDR4Geometry()
	}
	if seed != nil && *seed == 0 {
		*seed = DefaultSeed
	}
	if temps != nil && len(*temps) == 0 {
		*temps = StudyTemps()
	}
}

// TinyScale returns the CI-friendly measurement scale the CLIs expose
// as -scale tiny (matching internal/exp's test scale).
func TinyScale() Scale {
	return Scale{RowsPerRegion: 10, Regions: 2, Hammers: 150_000, MaxHammers: 512_000, Repetitions: 1, ModulesPerMfr: 2}
}

// TinyGeometry returns the reduced geometry paired with TinyScale.
func TinyGeometry() Geometry {
	return Geometry{Banks: 1, RowsPerBank: 512, SubarrayRows: 128, Chips: 8, ChipWidth: 8, ColumnsPerRow: 32}
}

// PaperGeometry returns the full-size geometry paired with
// PaperScale.
func PaperGeometry() Geometry {
	return Geometry{Banks: 4, RowsPerBank: 65536, SubarrayRows: 512, Chips: 8, ChipWidth: 8, ColumnsPerRow: 128}
}

// NamedScale resolves the scale names shared by the rhchar and
// rhfleet CLIs ("tiny", "default", "paper"). A zero Geometry return
// means "use the defaults"; ok is false for unknown names.
func NamedScale(name string) (scale Scale, geom Geometry, ok bool) {
	switch name {
	case "tiny":
		return TinyScale(), TinyGeometry(), true
	case "default":
		return DefaultScale(), Geometry{}, true
	case "paper":
		return PaperScale(), PaperGeometry(), true
	}
	return Scale{}, Geometry{}, false
}
