package rowhammer

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkCampaignFleet measures campaign throughput in jobs/sec on a
// 32-module hcfirst fleet (8 modules x 4 mfrs), comparing a serial
// worker pool against one worker per CPU. Run with:
//
//	go test -bench CampaignFleet -run '^$' .
func BenchmarkCampaignFleet(b *testing.B) {
	const modulesPerMfr = 8 // x4 mfrs = 32 modules
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := tinyFleetSpec(CampaignHCFirst, modulesPerMfr)
			spec.Workers = workers
			jobs := len(spec.Mfrs) * modulesPerMfr
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunCampaign(context.Background(), spec, CampaignOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != jobs {
					b.Fatalf("completed %d jobs, want %d", res.Completed, jobs)
				}
			}
			b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/sec")
		})
	}
}
