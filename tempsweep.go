package rowhammer

import (
	"context"
	"fmt"
	"math/bits"

	"rowhammer/internal/pool"
)

// CellID identifies a DRAM cell within one bank.
type CellID struct {
	Row int
	Bit int
}

// TempSweepConfig configures a temperature-sweep characterization.
type TempSweepConfig struct {
	Bank    int
	Victims []int
	// Temps defaults to StudyTemps().
	Temps []float64
	// Hammers per BER test (paper: 150K).
	Hammers int64
	Pattern PatternKind
	// Repetitions per (victim, temperature); a cell counts as flipped
	// at a temperature if it flips in any repetition.
	Repetitions int
}

// TempSweepResult holds the raw sweep data.
type TempSweepResult struct {
	Temps []float64
	Rows  []int
	// Flips[ti][ri] is the worst-repetition result for Rows[ri] at
	// Temps[ti].
	Flips [][]HammerResult
	// Cells maps every victim-row cell that flipped anywhere in the
	// sweep to a bitmask over temperature indexes.
	Cells map[CellID]uint32
}

// TemperatureSweep runs BER tests for every victim at every
// temperature, recording per-cell flip observations (§5).
func (t *Tester) TemperatureSweep(cfg TempSweepConfig) (*TempSweepResult, error) {
	return t.temperatureSweep(context.Background(), cfg)
}

// temperatureSweep implements TemperatureSweep, checking ctx between
// temperature points.
func (t *Tester) temperatureSweep(ctx context.Context, cfg TempSweepConfig) (*TempSweepResult, error) {
	if len(cfg.Victims) == 0 {
		return nil, fmt.Errorf("rowhammer: temperature sweep needs victim rows")
	}
	if len(cfg.Temps) == 0 {
		cfg.Temps = StudyTemps()
	}
	if cfg.Repetitions < 1 {
		cfg.Repetitions = 1
	}
	if t.effectiveWorkers() > 1 && len(cfg.Temps)*len(cfg.Victims) > 1 {
		return t.temperatureSweepParallel(ctx, cfg)
	}
	t.declareTrialSalts(cfg.Repetitions)
	res := &TempSweepResult{
		Temps: cfg.Temps,
		Rows:  cfg.Victims,
		Cells: make(map[CellID]uint32),
	}
	for ti, temp := range cfg.Temps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := t.b.SetTemperature(temp); err != nil {
			return nil, err
		}
		perRow := make([]HammerResult, len(cfg.Victims))
		for ri, victim := range cfg.Victims {
			// worst/cur swap headers instead of copying, so repetitions
			// reuse buffers; worst's buffers escape into perRow, so they
			// are scoped per victim.
			var worst, cur HammerResult
			for rep := 0; rep < cfg.Repetitions; rep++ {
				if err := t.HammerInto(HammerConfig{
					Bank:       cfg.Bank,
					VictimPhys: victim,
					Hammers:    cfg.Hammers,
					Pattern:    cfg.Pattern,
					Trial:      uint64(rep) + 1,
				}, &cur); err != nil {
					return nil, err
				}
				for _, bit := range cur.Victim.Bits {
					res.Cells[CellID{Row: victim, Bit: bit}] |= 1 << uint(ti)
				}
				if rep == 0 || cur.Victim.Count() > worst.Victim.Count() {
					worst, cur = cur, worst
				}
			}
			perRow[ri] = worst
		}
		res.Flips = append(res.Flips, perRow)
	}
	// Restore the baseline temperature.
	if err := t.b.SetTemperature(50); err != nil {
		return nil, err
	}
	return res, nil
}

// sweepUnit is one (temperature, victim) shard of a parallel sweep.
type sweepUnit struct {
	worst HammerResult
	// bits is the union over repetitions of flipped victim bits, in
	// first-flip order.
	bits []int
}

// temperatureSweepParallel fans the (temperature, victim) grid out
// over hermetic bench clones and merges the shards back in grid
// order. Each shard replays the serial sweep's chamber trajectory up
// to its temperature point, so the settled plant temperature — and
// with it every recorded measurement — is bit-identical to the
// shared-bench serial sweep.
func (t *Tester) temperatureSweepParallel(ctx context.Context, cfg TempSweepConfig) (*TempSweepResult, error) {
	nR := len(cfg.Victims)
	units, err := pool.Map(ctx, t.effectiveWorkers(), len(cfg.Temps)*nR, func(u int) (sweepUnit, error) {
		ti, ri := u/nR, u%nR
		sub, err := t.clone()
		if err != nil {
			return sweepUnit{}, err
		}
		for k := 0; k <= ti; k++ {
			if err := sub.b.SetTemperature(cfg.Temps[k]); err != nil {
				return sweepUnit{}, err
			}
		}
		sub.declareTrialSalts(cfg.Repetitions)
		var unit sweepUnit
		seen := make(map[int]bool)
		for rep := 0; rep < cfg.Repetitions; rep++ {
			hr, err := sub.Hammer(HammerConfig{
				Bank:       cfg.Bank,
				VictimPhys: cfg.Victims[ri],
				Hammers:    cfg.Hammers,
				Pattern:    cfg.Pattern,
				Trial:      uint64(rep) + 1,
			})
			if err != nil {
				return sweepUnit{}, err
			}
			for _, bit := range hr.Victim.Bits {
				if !seen[bit] {
					seen[bit] = true
					unit.bits = append(unit.bits, bit)
				}
			}
			if rep == 0 || hr.Victim.Count() > unit.worst.Victim.Count() {
				unit.worst = hr
			}
		}
		return unit, nil
	})
	if err != nil {
		return nil, err
	}
	res := &TempSweepResult{
		Temps: cfg.Temps,
		Rows:  cfg.Victims,
		Cells: make(map[CellID]uint32),
	}
	for ti := range cfg.Temps {
		perRow := make([]HammerResult, nR)
		for ri := 0; ri < nR; ri++ {
			unit := units[ti*nR+ri]
			perRow[ri] = unit.worst
			for _, bit := range unit.bits {
				res.Cells[CellID{Row: cfg.Victims[ri], Bit: bit}] |= 1 << uint(ti)
			}
		}
		res.Flips = append(res.Flips, perRow)
	}
	// Leave the main bench exactly where the serial sweep would:
	// replay the temperature trajectory and restore the baseline, so
	// follow-on measurements on this tester do not depend on the
	// worker count.
	for _, temp := range cfg.Temps {
		if err := t.b.SetTemperature(temp); err != nil {
			return nil, err
		}
	}
	if err := t.b.SetTemperature(50); err != nil {
		return nil, err
	}
	return res, nil
}

// TempClusterMatrix is the Fig. 3 artifact: vulnerable cells clustered
// by the (lower, upper) bounds of their observed vulnerable
// temperature range, plus Table 3's gap statistics.
type TempClusterMatrix struct {
	Temps []float64
	// Counts[hiIdx][loIdx] is the number of cells whose observed range
	// is [Temps[loIdx], Temps[hiIdx]] (lower-triangular: loIdx<=hiIdx).
	Counts [][]int
	// Gap statistics: cells flipping at every in-range temperature
	// (NoGap), missing exactly one (OneGap), or more (MoreGap).
	NoGap, OneGap, MoreGap int
	Total                  int
}

// ClusterByRange computes the Fig. 3 cluster matrix from the sweep.
func (r *TempSweepResult) ClusterByRange() *TempClusterMatrix {
	n := len(r.Temps)
	m := &TempClusterMatrix{Temps: r.Temps}
	m.Counts = make([][]int, n)
	for i := range m.Counts {
		m.Counts[i] = make([]int, n)
	}
	for _, mask := range r.Cells {
		if mask == 0 {
			continue
		}
		lo := bits.TrailingZeros32(mask)
		hi := 31 - bits.LeadingZeros32(mask)
		m.Counts[hi][lo]++
		m.Total++
		span := hi - lo + 1
		gaps := span - bits.OnesCount32(mask)
		switch gaps {
		case 0:
			m.NoGap++
		case 1:
			m.OneGap++
		default:
			m.MoreGap++
		}
	}
	return m
}

// Fraction returns a cluster's share of the vulnerable population.
func (m *TempClusterMatrix) Fraction(loIdx, hiIdx int) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Counts[hiIdx][loIdx]) / float64(m.Total)
}

// FullRangeFraction returns the share of cells vulnerable at every
// tested temperature (Obsv. 2).
func (m *TempClusterMatrix) FullRangeFraction() float64 {
	return m.Fraction(0, len(m.Temps)-1)
}

// NarrowRangeFraction returns the share of cells vulnerable at exactly
// one tested temperature (Obsv. 3).
func (m *TempClusterMatrix) NarrowRangeFraction() float64 {
	if m.Total == 0 {
		return 0
	}
	n := 0
	for i := range m.Temps {
		n += m.Counts[i][i]
	}
	return float64(n) / float64(m.Total)
}

// NoGapFraction returns Table 3's statistic: the share of vulnerable
// cells that flip at every temperature point inside their range.
func (m *TempClusterMatrix) NoGapFraction() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.NoGap) / float64(m.Total)
}

// HCFirstAtTemps measures every row's HCfirst at each temperature
// (the Fig. 5 measurement). Result indexing: [tempIdx][rowIdx]; an
// unfound HCfirst is reported as 0.
func (t *Tester) HCFirstAtTemps(bank int, rows []int, temps []float64, cfg HCFirstConfig, reps int) ([][]int64, error) {
	out := make([][]int64, len(temps))
	for ti, temp := range temps {
		if err := t.b.SetTemperature(temp); err != nil {
			return nil, err
		}
		out[ti] = make([]int64, len(rows))
		for ri, row := range rows {
			c := cfg
			c.Bank = bank
			c.VictimPhys = row
			res, err := t.HCFirstMin(c, reps)
			if err != nil {
				return nil, err
			}
			if res.Found {
				out[ti][ri] = res.HCfirst
			}
		}
	}
	if err := t.b.SetTemperature(50); err != nil {
		return nil, err
	}
	return out, nil
}
