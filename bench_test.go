// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at a
// reduced-but-representative scale and reports its headline metric(s)
// via b.ReportMetric, so `go test -bench=.` prints a compact
// paper-vs-measured summary. EXPERIMENTS.md records the comparison.
package rowhammer_test

import (
	"testing"

	rh "rowhammer"
	"rowhammer/internal/exp"
)

// benchConfig is the scale used by the benchmark harness: larger than
// the unit-test scale (stable statistics) but minutes, not hours.
func benchConfig() exp.Config {
	return exp.Config{
		Scale: rh.Scale{
			RowsPerRegion: 12,
			Regions:       3,
			Hammers:       150_000,
			MaxHammers:    512_000,
			Repetitions:   2,
			ModulesPerMfr: 2,
		},
		Seed: 0xbe7c,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 1024, SubarrayRows: 256,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 32,
		},
	}
}

func BenchmarkTable2Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Table2()
		b.ReportMetric(float64(res.DDR4Chips), "ddr4-chips")
		b.ReportMetric(float64(res.DDR3Chips), "ddr3-chips")
	}
}

func BenchmarkTable3ContinuousRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper: 99.1/98.9/98.0/99.2 %.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.NoGapFrac[j], "nogap-pct-"+mfr)
		}
	}
}

func BenchmarkFig3TempRangeClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper full-range shares: A 14.2, B 17.4, C 9.6, D 29.8 %.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.Matrices[j].FullRangeFraction(), "fullrange-pct-"+mfr)
		}
	}
}

func BenchmarkFig4BERvsTemperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper at 90 °C: A ≈ +50…100%, B ≈ −20%, C ≈ +40%, D ≈ +200%.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.TrendAt(j, 90), "ber-change90-pct-"+mfr)
		}
	}
}

func BenchmarkFig5HCFirstTempChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper crossings 50→90: A P45, B P67, C P71, D P40;
		// magnitude ratios ≈ 3.8–4.3×.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(res.Cross90[j], "crossP90-"+mfr)
			b.ReportMetric(res.MagnitudeRatio[j], "magratio-"+mfr)
		}
	}
}

func BenchmarkFig6TimingTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OnSpacing["aggressor-on"].Nanoseconds(), "tAggOn-ns")
		b.ReportMetric(res.OffSpacing["aggressor-off"].Nanoseconds(), "tAggOff-ns")
	}
}

func BenchmarkFig7BERvsAggOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.AggOnSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper BER ×10.2/3.1/4.4/9.6 at 154.5 ns.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(res.MeanBERRatio(j), "ber-ratio-"+mfr)
		}
	}
}

func BenchmarkFig8HCFirstVsAggOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.AggOnSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper HCfirst −40.0/−28.3/−32.7/−37.3 %.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.MeanHCChange(j), "hc-change-pct-"+mfr)
		}
	}
}

func BenchmarkFig9BERvsAggOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.AggOffSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper BER ÷6.3/2.9/4.9/5.0 at 40.5 ns.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(res.MeanBERRatio(j), "ber-ratio-"+mfr)
		}
	}
}

func BenchmarkFig10HCFirstVsAggOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.AggOffSweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper HCfirst +33.8/+24.7/+50.1/+33.7 %.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.MeanHCChange(j), "hc-change-pct-"+mfr)
		}
	}
}

func BenchmarkFig11RowVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper (avg across mfrs): P99 ≥1.6×, P95 ≥2.0×, P90 ≥2.2×.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(res.Summary[j].RatioP95, "p95-ratio-"+mfr)
		}
	}
}

func BenchmarkFig12ColumnHeatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper zero-flip columns: A 27.8%, B ~0%, C 31.1%, D 9.96%.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.ZeroFrac[j], "zerocol-pct-"+mfr)
		}
	}
}

func BenchmarkFig13ColumnClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper: B design-dominated (CV≈0 mass 50.9%), A process-
		// dominated (CV≈1 mass 59.8%).
		for j, mfr := range res.Mfrs {
			b.ReportMetric(res.MeanCV[j], "mean-crosschip-cv-"+mfr)
		}
	}
}

func BenchmarkFig14SubarrayRegression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper slopes: 0.46/0.41/0.42/0.67.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(res.Fits[j].Slope, "slope-"+mfr)
			b.ReportMetric(res.Fits[j].R2, "r2-"+mfr)
		}
	}
}

func BenchmarkFig15SubarrayBD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig15(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper (Mfr C): P5 same ≈0.975, P5 different ≈0.66.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(res.P5Same[j], "p5-same-"+mfr)
			b.ReportMetric(res.P5Diff[j], "p5-diff-"+mfr)
		}
	}
}

func BenchmarkAttackImprovement1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Attack1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper: informed choice can halve the required hammer count.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.Reduction[j], "hc-reduction-pct-"+mfr)
		}
	}
}

func BenchmarkAttackImprovement2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Attack2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper: exact-T cells ≈0.3%, at-or-above ≈90% of vulnerable
		// cells.
		b.ReportMetric(100*res.ExactCellFrac, "exactT-cells-pct")
		b.ReportMetric(100*res.AboveCellFrac, "aboveT-cells-pct")
	}
}

func BenchmarkAttackImprovement3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Attack3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper: BER ×3.2–10.2, HCfirst −36% average.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.HCReduction[j], "hc-reduction-pct-"+mfr)
			b.ReportMetric(res.BERRatio[j], "ber-ratio-"+mfr)
		}
	}
}

func BenchmarkDefenseImprovement1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Defense1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper: Graphene −80%, BlockHammer −33% area.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.GrapheneReduction[j], "graphene-saving-pct-"+mfr)
			b.ReportMetric(100*res.BHReduction[j], "blockhammer-saving-pct-"+mfr)
		}
	}
}

func BenchmarkDefenseImprovement2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Defense2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper: ≥10× profiling speedup with approximate estimates.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(res.Speedup[j], "speedup-"+mfr)
			b.ReportMetric(100*res.RelError[j], "est-error-pct-"+mfr)
		}
	}
}

func BenchmarkDefenseImprovement3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Defense3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.RetiredAt85), "retired-rows-85C")
		b.ReportMetric(100*res.Coverage, "coverage-pct")
	}
}

func BenchmarkDefenseImprovement4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Defense4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Paper: cooling 90→50 °C cuts Mfr A BER by ≈25%.
		for j, mfr := range res.Mfrs {
			b.ReportMetric(100*res.BERReduction[j], "cooling-ber-cut-pct-"+mfr)
		}
	}
}

func BenchmarkDefenseImprovement5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Defense5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ExtendedHC), "attack-hcfirst")
		b.ReportMetric(float64(res.LimitedHC), "limited-hcfirst")
		b.ReportMetric(100*res.BenignSlowdown, "benign-slowdown-pct")
	}
}

func BenchmarkDefenseImprovement6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Defense6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for j, mfr := range res.Mfrs {
			b.ReportMetric(res.ExposureRatio[j], "exposure-ratio-"+mfr)
		}
	}
}
