// Package rowhammer implements the experimental methodology of
// "A Deeper Look into RowHammer's Sensitivities: Experimental Analysis
// of Real DRAM Chips and Implications on Future Attacks and Defenses"
// (Orosa & Yağlıkçı et al., MICRO 2021) on top of a simulated SoftMC +
// DRAM test bench.
//
// The package provides:
//
//   - Bench: one device under test — a DRAM module with its
//     circuit-level fault model, a SoftMC-style command sequencer, and
//     a PID-controlled thermal chamber.
//   - Tester: the paper's §4.2 methodology — double-sided hammering
//     with worst-case data patterns, BER measurement, HCfirst binary
//     search, logical→physical mapping recovery, temperature sweeps,
//     and the spatial-variation analyses.
//
// All results are deterministic for a given module seed and trial
// number, which makes every experiment in the paper reproducible
// bit-for-bit.
package rowhammer

import (
	"fmt"

	"rowhammer/internal/dram"
	"rowhammer/internal/faultmodel"
	"rowhammer/internal/softmc"
	"rowhammer/internal/thermal"
)

// BenchConfig configures one device under test.
type BenchConfig struct {
	// Profile selects the manufacturer fault profile (required).
	Profile *faultmodel.Profile
	// Seed identifies the module instance (process variation).
	Seed uint64
	// Geometry defaults to dram.DefaultDDR4Geometry().
	Geometry dram.Geometry
	// Timing defaults to dram.DDR4Timing().
	Timing dram.Timing
	// TRR enables in-DRAM target row refresh. The characterization
	// methodology leaves it nil (and never refreshes), as in §4.2.
	TRR *dram.TRRConfig
	// OnDieECC enables the (72,64) SECDED code. Characterization
	// modules have no ECC (§4.2).
	OnDieECC bool
	// Retention enables data-retention failure modeling; nil (off)
	// matches §4.2's interference-free setup, and enabling it lets
	// experiments verify that short tests stay retention-clean.
	Retention *dram.RetentionConfig
}

// Bench is one DRAM module under test with its full instrumentation.
type Bench struct {
	Module  *dram.Module
	Model   *faultmodel.Model
	Exec    *softmc.Executor
	Chamber *thermal.Chamber
	Profile *faultmodel.Profile
	Seed    uint64

	// cfg is the normalized construction config, kept so Clone can
	// rebuild an identical independent bench.
	cfg BenchConfig
}

// NewBench builds a device under test.
func NewBench(cfg BenchConfig) (*Bench, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("rowhammer: BenchConfig.Profile is required")
	}
	if cfg.Geometry == (dram.Geometry{}) {
		cfg.Geometry = dram.DefaultDDR4Geometry()
	}
	if cfg.Timing == (dram.Timing{}) {
		cfg.Timing = dram.DDR4Timing()
	}
	model, err := faultmodel.NewModel(faultmodel.Config{
		Profile:    cfg.Profile,
		ModuleSeed: cfg.Seed,
		Geometry:   cfg.Geometry,
	})
	if err != nil {
		return nil, err
	}
	mod, err := dram.NewModule(dram.ModuleConfig{
		Geometry:     cfg.Geometry,
		Timing:       cfg.Timing,
		Remap:        cfg.Profile.Remap,
		Disturber:    model,
		TRR:          cfg.TRR,
		OnDieECC:     cfg.OnDieECC,
		Retention:    cfg.Retention,
		Seed:         cfg.Seed,
		InitialTempC: 50,
	})
	if err != nil {
		return nil, err
	}
	b := &Bench{
		Module:  mod,
		Model:   model,
		Exec:    softmc.NewExecutor(mod),
		Chamber: thermal.NewChamber(cfg.Seed),
		Profile: cfg.Profile,
		Seed:    cfg.Seed,
		cfg:     cfg,
	}
	if err := b.SetTemperature(50); err != nil {
		return nil, err
	}
	return b, nil
}

// Clone builds an independent bench with the same configuration: a
// fresh module, fault model, executor, and thermal chamber replaying
// the same deterministic construction. The parallel measurement cores
// use clones as hermetic per-shard devices under test.
func (b *Bench) Clone() (*Bench, error) {
	nb, err := NewBench(b.cfg)
	if err != nil {
		return nil, err
	}
	// Clones rebuild the same deterministic candidate sets, so sharing
	// the parent's sharded kernel cache only deduplicates work; the
	// shards' locks keep concurrent cores from serializing on it.
	if err := nb.Model.ShareKernelCache(b.Model); err != nil {
		return nil, err
	}
	return nb, nil
}

// SetTemperature drives the thermal chamber to tempC, waits for the
// closed loop to settle, and exposes the resulting die temperature to
// the module.
func (b *Bench) SetTemperature(tempC float64) error {
	if err := b.Chamber.SetAndSettle(tempC); err != nil {
		return err
	}
	b.Module.SetTemperature(b.Chamber.Plant.Temperature())
	return nil
}

// Geometry returns the module geometry.
func (b *Bench) Geometry() dram.Geometry { return b.Module.Geometry() }

// Timing returns the module timing set.
func (b *Bench) Timing() dram.Timing { return b.Module.Timing() }

// Scale bounds the work each experiment does. The paper tests the
// first/middle/last 8K rows of a bank with up to 512K hammers; the
// defaults here are chosen so the full experiment suite runs in
// minutes while remaining statistically stable.
type Scale struct {
	// RowsPerRegion is the number of victim rows tested per bank
	// region.
	RowsPerRegion int
	// Regions is how many regions (first/middle/last) are tested.
	Regions int
	// Hammers is the hammer count of BER tests (paper: 150K).
	Hammers int64
	// MaxHammers caps HCfirst searches (paper: 512K).
	MaxHammers int64
	// Repetitions per test (paper: 5).
	Repetitions int
	// ModulesPerMfr is how many module instances are tested per
	// manufacturer.
	ModulesPerMfr int
}

// DefaultScale returns the test-suite scale.
func DefaultScale() Scale {
	return Scale{
		RowsPerRegion: 48,
		Regions:       3,
		Hammers:       150_000,
		MaxHammers:    512_000,
		Repetitions:   3,
		ModulesPerMfr: 2,
	}
}

// PaperScale returns the full study scale (hours of CPU time).
func PaperScale() Scale {
	return Scale{
		RowsPerRegion: 8192,
		Regions:       3,
		Hammers:       150_000,
		MaxHammers:    512_000,
		Repetitions:   5,
		ModulesPerMfr: 4,
	}
}

// RegionRows returns the physical victim rows of the scale's regions:
// the paper tests the first, middle and last rows of a bank. Rows on
// subarray edges (no in-subarray neighbor on both sides) are skipped,
// since a double-sided attack needs both physical neighbors.
func (s Scale) RegionRows(g dram.Geometry) []int {
	starts := []int{0, (g.RowsPerBank - s.RowsPerRegion) / 2, g.RowsPerBank - s.RowsPerRegion}
	if s.Regions < len(starts) {
		starts = starts[:s.Regions]
	}
	var rows []int
	seen := make(map[int]bool)
	for _, start := range starts {
		if start < 0 {
			start = 0
		}
		for r := start; r < start+s.RowsPerRegion && r < g.RowsPerBank; r++ {
			if seen[r] {
				continue
			}
			if r%g.SubarrayRows == 0 || r%g.SubarrayRows == g.SubarrayRows-1 {
				continue
			}
			seen[r] = true
			rows = append(rows, r)
		}
	}
	return rows
}
