package rowhammer

import (
	"context"
	"reflect"
	"testing"

	"rowhammer/internal/faultmodel"
)

// parallelTestTester builds a small bench for worker-invariance tests.
func parallelTestTester(t *testing.T, workers int) *Tester {
	t.Helper()
	b, err := NewBench(BenchConfig{
		Profile: faultmodel.MfrA(),
		Seed:    0x9a11e1,
		Geometry: Geometry{
			Banks: 1, RowsPerBank: 256, SubarrayRows: 64,
			Chips: 4, ChipWidth: 8, ColumnsPerRow: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tester := NewTester(b)
	tester.SetWorkers(workers)
	return tester
}

// TestRowHCFirstProfileWorkerInvariance proves the parallel HCfirst
// profile is bit-identical to the serial shared-bench path: the
// hermetic per-row clones must reproduce exactly what the serial
// loop measures.
func TestRowHCFirstProfileWorkerInvariance(t *testing.T) {
	rows := []int{8, 9, 10, 20, 33, 40}
	cfg := HCFirstConfig{Pattern: PatCheckered, MaxHammers: 512_000}

	serial, err := parallelTestTester(t, 1).RowHCFirstProfileCtx(context.Background(), 0, rows, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := parallelTestTester(t, workers).RowHCFirstProfileCtx(context.Background(), 0, rows, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d profile diverged from serial:\nserial:   %+v\nparallel: %+v", workers, serial, par)
		}
	}
	found := 0
	for _, rhc := range serial {
		if rhc.Found {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no row found an HCfirst; invariance test vacuous")
	}
}

// TestTemperatureSweepWorkerInvariance proves the parallel
// (temperature, victim) sweep — including the per-shard chamber
// trajectory replay — reproduces the serial sweep bit-for-bit, and
// that a follow-on measurement on the same tester is also unaffected
// by the worker count (the main bench is left in the serial state).
func TestTemperatureSweepWorkerInvariance(t *testing.T) {
	cfg := TempSweepConfig{
		Victims:     []int{10, 21},
		Temps:       []float64{50, 65, 80},
		Hammers:     150_000,
		Pattern:     PatCheckered,
		Repetitions: 2,
	}

	type outcome struct {
		sweep    *TempSweepResult
		followOn HammerResult
	}
	run := func(workers int) outcome {
		tester := parallelTestTester(t, workers)
		sweep, err := tester.TemperatureSweepCtx(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The follow-on hammer exercises the post-sweep bench state
		// (chamber restored to 50 °C, module re-patternable).
		hr, err := tester.Hammer(HammerConfig{
			Bank: 0, VictimPhys: 33, Hammers: 300_000, Pattern: PatCheckered, Trial: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{sweep: sweep, followOn: hr}
	}

	serial := run(1)
	for _, workers := range []int{2, 4} {
		par := run(workers)
		if !reflect.DeepEqual(serial.sweep, par.sweep) {
			t.Fatalf("workers=%d sweep diverged from serial", workers)
		}
		if !reflect.DeepEqual(serial.followOn, par.followOn) {
			t.Fatalf("workers=%d follow-on hammer diverged from serial", workers)
		}
	}
	if len(serial.sweep.Cells) == 0 {
		t.Fatal("sweep observed no flips; invariance test vacuous")
	}
}

// TestMeasureModuleCoresWorkerInvariance runs the fleet measurement
// cores end to end at several worker counts and compares the full
// (pattern, metrics, series) outputs.
func TestMeasureModuleCoresWorkerInvariance(t *testing.T) {
	sc := MeasureScope{
		Scale: Scale{RowsPerRegion: 8, Regions: 1, Hammers: 150_000, MaxHammers: 512_000, Repetitions: 1},
		Temps: []float64{50, 70, 90},
	}
	kinds := []struct {
		name string
		run  func(*Tester) (PatternKind, map[string]float64, map[string][]float64, error)
	}{
		{"hcfirst", func(tr *Tester) (PatternKind, map[string]float64, map[string][]float64, error) {
			return tr.MeasureModuleHCFirst(context.Background(), sc)
		}},
		{"ber", func(tr *Tester) (PatternKind, map[string]float64, map[string][]float64, error) {
			return tr.MeasureModuleBER(context.Background(), sc)
		}},
		{"spatial", func(tr *Tester) (PatternKind, map[string]float64, map[string][]float64, error) {
			return tr.MeasureModuleSpatial(context.Background(), sc)
		}},
	}
	for _, k := range kinds {
		patS, metS, serS, err := k.run(parallelTestTester(t, 1))
		if err != nil {
			t.Fatalf("%s serial: %v", k.name, err)
		}
		patP, metP, serP, err := k.run(parallelTestTester(t, 3))
		if err != nil {
			t.Fatalf("%s parallel: %v", k.name, err)
		}
		if patS != patP || !reflect.DeepEqual(metS, metP) || !reflect.DeepEqual(serS, serP) {
			t.Fatalf("%s diverged across worker counts:\nserial:   %v %v\nparallel: %v %v", k.name, metS, serS, metP, serP)
		}
	}
}
