// Benchmarks for the batched disturb-evaluation hot path: one
// DisturbBatch call evaluating a row's candidate set across a whole
// trial batch, and the bitplane flip application that turns the
// emitted masks into stored data. Both must stay allocation-free in
// steady state; the committed 0 allocs/op baselines make bench-check
// a hard floor.
package rowhammer_test

import (
	"testing"

	rh "rowhammer"
	"rowhammer/internal/dram"
	"rowhammer/internal/faultmodel"
)

// TestHammerSteadyStateZeroAlloc pins the arena-reuse contract: after
// one warmup call sizes the scratch buffers, a full HammerInto cycle
// (pattern write, bulk hammer, three readbacks) allocates nothing.
func TestHammerSteadyStateZeroAlloc(t *testing.T) {
	bench, err := rh.NewBench(rh.BenchConfig{
		Profile: rh.ProfileByName("A"),
		Seed:    61,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 512, SubarrayRows: 256,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rh.NewTester(bench)
	cfg := rh.HammerConfig{
		Bank: 0, VictimPhys: 100, Hammers: 512_000, Pattern: rh.PatCheckered, Trial: 1,
	}
	var res rh.HammerResult
	if err := tr.HammerInto(cfg, &res); err != nil {
		t.Fatal(err)
	}
	if res.Victim.Count() == 0 {
		t.Fatal("warmup produced no flips; test vacuous")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := tr.HammerInto(cfg, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state HammerInto allocates %.1f objects per run, want 0", allocs)
	}
}

// benchLedger builds a distance-1 ledger at the reference timings and
// 50 °C, the shape every double-sided hammer run produces.
func benchLedger(hammers int64) *dram.RowLedger {
	led := &dram.RowLedger{}
	d := &led.Dist[0]
	d.Count = hammers
	d.SumOn = dram.Picos(hammers) * dram.PicosFromNs(34.5)
	d.SumOff = dram.Picos(hammers) * dram.PicosFromNs(16.5)
	d.SumTempMilliC = hammers * 50_000
	return led
}

func BenchmarkDisturbBatch(b *testing.B) {
	geo := dram.Geometry{
		Banks: 1, RowsPerBank: 512, SubarrayRows: 256,
		Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
	}
	m, err := faultmodel.NewModel(faultmodel.Config{
		Profile: faultmodel.MfrA(), ModuleSeed: 61, Geometry: geo,
	})
	if err != nil {
		b.Fatal(err)
	}
	salts := []uint64{1, 2, 3, 4, 5} // the paper's min-of-5 trial batch
	masks := make([][]uint64, len(salts))
	for i := range masks {
		masks[i] = make([]uint64, geo.RowWords())
	}
	flips := make([]int, len(salts))
	data := make([]uint64, geo.RowWords())
	agg := make([]uint64, geo.RowWords())
	for i := range agg {
		agg[i] = ^uint64(0)
	}
	ctx := dram.DisturbContext{
		Bank: 0, Row: 100, Ledger: benchLedger(512_000),
		Data: data, Geometry: geo, Up: agg, Down: agg,
	}
	// Warm up so the timed loop measures the batched walk, not the
	// one-time candidate-set build.
	m.DisturbBatch(ctx, salts, masks, flips)
	// One op is a block of walks: at the Makefile's small -benchtime a
	// single ~50 µs walk would drown in scheduler jitter, and the
	// committed baseline gates this number.
	const walksPerOp = 16
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		for k := 0; k < walksPerOp; k++ {
			m.DisturbBatch(ctx, salts, masks, flips)
			total += flips[0]
		}
	}
	if total == 0 {
		b.Fatal("no flips; benchmark vacuous")
	}
}

func BenchmarkFlipApply(b *testing.B) {
	const (
		words        = 1024 // 8 KiB row
		appliesPerOp = 512  // block the ~300 ns kernel above timer jitter
	)
	data := make([]uint64, words)
	mask := make([]uint64, words)
	for i := range mask {
		mask[i] = 0x8000000000000001
	}
	b.SetBytes(words * 8 * appliesPerOp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < appliesPerOp; k++ {
			dram.ApplyFlipMask(data, mask)
		}
	}
	if data[0] != 0 && data[0] != mask[0] {
		b.Fatal("mask application corrupted data")
	}
}
