GO ?= go

.PHONY: all build test race vet bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages: the campaign engine, the worker
# pool it is built on, and the experiment drivers that fan out per
# manufacturer.
race:
	$(GO) test -race ./internal/campaign/... ./internal/pool/... ./internal/exp/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench CampaignFleet -run '^$$' -benchtime 3x .

check: build vet test race
