GO ?= go

.PHONY: all build test race vet bench chaos check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages: the campaign engine, the worker
# pool it is built on, and the experiment drivers that fan out per
# manufacturer.
race:
	$(GO) test -race ./internal/campaign/... ./internal/pool/... ./internal/exp/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench CampaignFleet -run '^$$' -benchtime 3x .

# The fault-injection suite under the race detector: hardened engine
# (retry/backoff/breaker) driven through internal/inject, proving the
# bit-identical-summary and explicit-coverage-loss invariants.
chaos:
	$(GO) test -race -run Chaos -v ./internal/campaign/... ./internal/inject/...

check: build vet test race
