GO ?= go
BENCHTIME ?= 20x
BENCHOUT ?= BENCH_pr3.json

.PHONY: all build test race vet bench bench-json chaos check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages: the campaign engine, the worker
# pool it is built on, and the experiment drivers that fan out per
# manufacturer.
race:
	$(GO) test -race ./internal/campaign/... ./internal/pool/... ./internal/exp/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench CampaignFleet -run '^$$' -benchtime 3x .

# Benchmark-regression harness: run the two tracked end-to-end
# benchmarks and record them as JSON. The committed $(BENCHOUT) keeps
# the pre-change numbers under "baselines" — benchjson preserves that
# key when regenerating. CI runs this with BENCHTIME=1x as a smoke
# test and uploads the artifact.
bench-json:
	$(GO) test -bench 'HammerThroughput|CampaignFleet' -run '^$$' -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -o $(BENCHOUT)

# The fault-injection suite under the race detector: hardened engine
# (retry/backoff/breaker) driven through internal/inject, proving the
# bit-identical-summary and explicit-coverage-loss invariants.
chaos:
	$(GO) test -race -run Chaos -v ./internal/campaign/... ./internal/inject/...

check: build vet test race
