GO ?= go
BENCHTIME ?= 20x
BENCHOUT ?= BENCH_pr8.json
BENCHTHRESHOLD ?= 0.10
BENCHSET ?= HammerThroughput|CampaignFleet|DisturbBatch|FlipApply

.PHONY: all build test race vet bench bench-json bench-check bench-smoke golden chaos chaos-exp crash chaos-net chaos-fleet fuzz serve-smoke check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages: the campaign engine, the
# durability layer, the worker pool they are built on, the experiment
# drivers that fan out per manufacturer, the serving tier (store +
# campaign server, including the 1k-client load test), the fault
# model (its sharded kernel cache is shared across parallel cores),
# and the placement layer (lease service + worker registry, shard
# coordinator/scheduler/worker loops).
race:
	$(GO) test -race ./internal/campaign/... ./internal/durable/... ./internal/pool/... ./internal/exp/... \
		./internal/store/... ./internal/server/... ./internal/faultmodel/... \
		./internal/leasesvc/... ./internal/shard/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench CampaignFleet -run '^$$' -benchtime 3x .

# Benchmark-regression harness: run the tracked benchmarks (the two
# end-to-end ones plus the batched disturb hot-path pair) and record
# them as JSON. The committed $(BENCHOUT) keeps the pre-change numbers
# under "baselines" — benchjson preserves that key when regenerating.
# CI runs this with BENCHTIME=1x as a smoke test and uploads the
# artifact.
bench-json:
	$(GO) test -bench '$(BENCHSET)' -run '^$$' -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -o $(BENCHOUT)

# Benchmark trend gate: rerun the tracked benchmarks, record them to
# bench-current.json (untracked), and compare every metric against the
# best value anywhere in the committed BENCH_*.json files. The check
# is direction-aware — ns/op/B/op/allocs/op regress upward, rate units
# (jobs/sec, activations/s) downward — and any metric more than
# $(BENCHTHRESHOLD) (fraction) worse than the best baseline fails.
# The committed numbers are machine-specific; after a hardware change,
# refresh them deliberately with `make bench-json`.
bench-check:
	$(GO) test -bench '$(BENCHSET)' -run '^$$' -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -o bench-current.json
	$(GO) run ./cmd/benchjson -compare bench-current.json -threshold $(BENCHTHRESHOLD) BENCH_*.json

# One-iteration pass over the disturb hot-path benchmarks under the
# race detector: catches data races in the sharded kernel cache and
# keeps the benchmark bodies themselves compiling and running in CI
# without benchmark-grade runtime.
bench-smoke:
	$(GO) test -race -bench 'DisturbBatch|FlipApply' -run '^$$' -benchtime 1x .

# Golden suite: every experiment's rendered text and JSON artifact is
# byte-locked at tiny scale. On mismatch the actual bytes land next to
# the goldens as *.actual so CI can upload them. Regenerate
# deliberately with: go test ./internal/exp/ -run Golden -update
golden:
	$(GO) test -run Golden -count=1 -v ./internal/exp/

# The fault-injection suite under the race detector: hardened engine
# (retry/backoff/breaker) driven through internal/inject, proving the
# bit-identical-summary and explicit-coverage-loss invariants.
chaos:
	$(GO) test -race -run Chaos -v ./internal/campaign/... ./internal/inject/...

# End-to-end chaos drill on the experiment-generic engine path: run a
# paper experiment (fig5, one job per shard) through the real rhfleet
# binary twice — clean and under the chaos fault profile — and require
# the published merged artifacts to be bit-identical.
chaos-exp:
	$(GO) build -o $(CURDIR)/rhfleet.chaos ./cmd/rhfleet
	./rhfleet.chaos -exp fig5 -scale tiny -seed 7 -quiet -out fig5-ref.jsonl -artifact fig5-ref.artifact.json >/dev/null
	./rhfleet.chaos -exp fig5 -scale tiny -seed 7 -quiet -fault-profile chaos+seed=11 -retries 6 \
		-out fig5-chaos.jsonl -artifact fig5-chaos.artifact.json >/dev/null
	cmp fig5-ref.artifact.json fig5-chaos.artifact.json
	rm -f rhfleet.chaos fig5-ref.jsonl fig5-ref.jsonl.lock fig5-chaos.jsonl fig5-chaos.jsonl.lock \
		fig5-ref.artifact.json fig5-chaos.artifact.json

# Crash-injection suite: the checkpoint stream is cut at every byte
# offset, the engine and the real rhfleet binary are SIGKILLed
# mid-write at randomized points, and every resume must produce a
# bit-identical summary. Artifacts (surviving checkpoints, quarantine
# sidecars) land in crash-artifacts/ so CI can upload them on failure.
crash:
	mkdir -p crash-artifacts
	RH_CRASH_DIR=$(abspath crash-artifacts) $(GO) test -race -run Crash -v ./internal/campaign/... ./cmd/rhfleet/...

# Network chaos drill: shard workers own their shards through the
# fenced lease service over loopback HTTP (rhfleet -lease-listen),
# with seeded partition profiles and SIGKILLs injected into real
# binaries — the merged summary must stay byte-identical to a
# single-process run and no superseded writer may publish a record.
chaos-net:
	mkdir -p crash-artifacts
	RH_CRASH_DIR=$(abspath crash-artifacts) $(GO) test -race -run TestCrashShardNet -count=1 -v ./cmd/rhfleet/

# Fleet placement drill: the real rhserved daemon fans a sharded
# campaign out across three real `rhfleet -worker` processes — one
# slowed by injected lease-client latency — then one healthy worker is
# SIGKILLed mid-run. The scheduler must rebalance off the straggler,
# reassign the dead worker's shards, and the published artifact must
# stay byte-identical to a single-process rhfleet run.
chaos-fleet:
	$(GO) test -race -run TestFleetChaosDrill -count=1 -v ./cmd/rhserved/

# Serve-smoke suite: drive the real rhserved binary end to end —
# start it on a temp store, submit a fig5 campaign over HTTP, stream
# SSE to completion, fetch the artifact and byte-compare it against
# `rhchar -format json`, drain cleanly on SIGTERM (exit 0), reload the
# index on restart, and SIGKILL mid-campaign + restart converging to
# the same bytes.
serve-smoke:
	$(GO) test -run 'TestServeSmoke' -count=1 -v ./cmd/rhserved/

# Short fuzz pass over the checkpoint parsers and the CRC trailer
# codec; the committed corpora under internal/campaign/testdata/fuzz
# replay on every plain `go test`.
fuzz:
	$(GO) test -fuzz FuzzReadCheckpoint -fuzztime 30s ./internal/campaign/
	$(GO) test -fuzz FuzzRecordCRCTrailer -fuzztime 30s ./internal/campaign/

check: build vet test race
