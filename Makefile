GO ?= go
BENCHTIME ?= 20x
BENCHOUT ?= BENCH_pr3.json

.PHONY: all build test race vet bench bench-json chaos crash fuzz check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent packages: the campaign engine, the
# durability layer, the worker pool they are built on, and the
# experiment drivers that fan out per manufacturer.
race:
	$(GO) test -race ./internal/campaign/... ./internal/durable/... ./internal/pool/... ./internal/exp/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench CampaignFleet -run '^$$' -benchtime 3x .

# Benchmark-regression harness: run the two tracked end-to-end
# benchmarks and record them as JSON. The committed $(BENCHOUT) keeps
# the pre-change numbers under "baselines" — benchjson preserves that
# key when regenerating. CI runs this with BENCHTIME=1x as a smoke
# test and uploads the artifact.
bench-json:
	$(GO) test -bench 'HammerThroughput|CampaignFleet' -run '^$$' -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -o $(BENCHOUT)

# The fault-injection suite under the race detector: hardened engine
# (retry/backoff/breaker) driven through internal/inject, proving the
# bit-identical-summary and explicit-coverage-loss invariants.
chaos:
	$(GO) test -race -run Chaos -v ./internal/campaign/... ./internal/inject/...

# Crash-injection suite: the checkpoint stream is cut at every byte
# offset, the engine and the real rhfleet binary are SIGKILLed
# mid-write at randomized points, and every resume must produce a
# bit-identical summary. Artifacts (surviving checkpoints, quarantine
# sidecars) land in crash-artifacts/ so CI can upload them on failure.
crash:
	mkdir -p crash-artifacts
	RH_CRASH_DIR=$(abspath crash-artifacts) $(GO) test -race -run Crash -v ./internal/campaign/... ./cmd/rhfleet/...

# Short fuzz pass over the checkpoint parsers and the CRC trailer
# codec; the committed corpora under internal/campaign/testdata/fuzz
# replay on every plain `go test`.
fuzz:
	$(GO) test -fuzz FuzzReadCheckpoint -fuzztime 30s ./internal/campaign/
	$(GO) test -fuzz FuzzRecordCRCTrailer -fuzztime 30s ./internal/campaign/

check: build vet test race
