package rowhammer_test

import (
	"fmt"
	"log"

	rh "rowhammer"
)

// Example demonstrates the core characterization flow: hammer a victim
// row double-sided and binary-search its HCfirst.
func Example() {
	bench, err := rh.NewBench(rh.BenchConfig{
		Profile: rh.ProfileByName("A"),
		Seed:    1,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 256, SubarrayRows: 256,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	tester := rh.NewTester(bench)

	res, err := tester.Hammer(rh.HammerConfig{
		Bank: 0, VictimPhys: 100, Hammers: 150_000,
		Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	hc, err := tester.HCFirst(rh.HCFirstConfig{
		Bank: 0, VictimPhys: 100, Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flips at 150K hammers: %d\n", res.Victim.Count())
	fmt.Printf("HCfirst found: %v\n", hc.Found)
	// Output:
	// flips at 150K hammers: 5
	// HCfirst found: true
}

// ExampleTester_WorstCasePattern finds the Table 1 data pattern that
// maximizes bit flips on a module (§4.2).
func ExampleTester_WorstCasePattern() {
	bench, err := rh.NewBench(rh.BenchConfig{
		Profile: rh.ProfileByName("C"),
		Seed:    5,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 256, SubarrayRows: 256,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	tester := rh.NewTester(bench)
	pat, err := tester.WorstCasePattern(0, []int{64, 128, 192}, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	_ = pat // module-specific; one of the seven Table 1 patterns
	fmt.Println(len(rh.AllPatterns), "candidate patterns")
	// Output: 7 candidate patterns
}
