package rowhammer

import (
	"rowhammer/internal/dram"
	"rowhammer/internal/faultmodel"
)

// Re-exported substrate types, so downstream users of the public API
// never need to reach into internal packages.

// PatternKind is a Table 1 data pattern.
type PatternKind = dram.PatternKind

// The Table 1 data patterns.
const (
	PatColStripe    = dram.PatColStripe
	PatColStripeInv = dram.PatColStripeInv
	PatCheckered    = dram.PatCheckered
	PatCheckeredInv = dram.PatCheckeredInv
	PatRowStripe    = dram.PatRowStripe
	PatRowStripeInv = dram.PatRowStripeInv
	PatRandom       = dram.PatRandom
)

// AllPatterns lists every Table 1 pattern.
var AllPatterns = dram.AllPatterns

// Profile is a manufacturer fault profile.
type Profile = faultmodel.Profile

// Profiles returns the four calibrated manufacturer profiles (A–D).
func Profiles() []*Profile { return faultmodel.Profiles() }

// ProfileByName returns the profile with the given letter name, or nil.
func ProfileByName(name string) *Profile { return faultmodel.ProfileByName(name) }

// Geometry describes a module's physical organization.
type Geometry = dram.Geometry

// Timing holds DRAM timing parameters.
type Timing = dram.Timing

// Picos is a time value in picoseconds.
type Picos = dram.Picos

// DDR4Timing returns the study's DDR4 timing set.
func DDR4Timing() Timing { return dram.DDR4Timing() }

// DDR3Timing returns the study's DDR3 timing set.
func DDR3Timing() Timing { return dram.DDR3Timing() }

// DefaultDDR4Geometry returns the reduced-scale DDR4 geometry.
func DefaultDDR4Geometry() Geometry { return dram.DefaultDDR4Geometry() }

// DefaultDDR3Geometry returns the reduced-scale DDR3 geometry.
func DefaultDDR3Geometry() Geometry { return dram.DefaultDDR3Geometry() }
