package rowhammer

import (
	"context"
	"fmt"

	"rowhammer/internal/dram"
	"rowhammer/internal/pool"
	"rowhammer/internal/rng"
	"rowhammer/internal/stats"
)

// Per-module measurement cores. Each core runs the full §4.2
// methodology for one module under test — worst-case data pattern
// first, then the kind-specific measurement — and supports cooperative
// cancellation between measurement steps. The experiment drivers in
// internal/exp and the fleet campaign engine both build on these, so a
// campaign job measures a module exactly the way the corresponding
// paper experiment does.

// ModuleSeed derives the deterministic seed of module instance i of a
// manufacturer from a master seed. Every layer that fans a master seed
// out to module instances (experiment drivers, fleet campaigns) uses
// this one derivation, which is what makes their results comparable.
func ModuleSeed(master uint64, mfr string, i int) uint64 {
	var m uint64
	if mfr != "" {
		m = uint64(mfr[0])
	}
	return rng.Hash64(master, m, uint64(i))
}

// SampleRows subsamples the scale's region rows down to at most n,
// evenly spaced, preserving first/middle/last region coverage.
func (s Scale) SampleRows(g Geometry, n int) []int {
	rows := s.RegionRows(g)
	if n <= 0 || len(rows) <= n {
		return rows
	}
	out := make([]int, 0, n)
	step := float64(len(rows)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, rows[int(float64(i)*step)])
	}
	return out
}

// PatternFlips is one pattern's total flip count over the surveyed
// victims.
type PatternFlips struct {
	Pattern PatternKind
	Flips   int
}

// PatternSurvey is the result of probing every Table 1 data pattern on
// a victim sample (§4.2's WCDP step).
type PatternSurvey struct {
	// Totals lists per-pattern flip counts in AllPatterns order.
	Totals []PatternFlips
	// Best is the worst-case data pattern (most flips; ties go to the
	// earlier pattern in AllPatterns order, matching the paper driver).
	Best PatternKind
	// BestFlips and WorstFlips are the flip counts under the strongest
	// and weakest pattern.
	BestFlips, WorstFlips int
}

// SurveyPatterns hammers the victim sample once per Table 1 pattern
// and tallies flips, identifying the module's worst-case data pattern.
// It checks ctx between patterns.
func (t *Tester) SurveyPatterns(ctx context.Context, bank int, victims []int, hammers int64) (PatternSurvey, error) {
	var s PatternSurvey
	if len(victims) == 0 {
		return s, fmt.Errorf("rowhammer: pattern survey needs victim rows")
	}
	bestFlips, worstFlips := -1, -1
	for _, pat := range dram.AllPatterns {
		if err := ctx.Err(); err != nil {
			return s, err
		}
		total := 0
		for _, v := range victims {
			res, err := t.Hammer(HammerConfig{
				Bank: bank, VictimPhys: v, Hammers: hammers, Pattern: pat, Trial: 1,
			})
			if err != nil {
				return s, err
			}
			total += res.Victim.Count()
		}
		s.Totals = append(s.Totals, PatternFlips{Pattern: pat, Flips: total})
		if total > bestFlips {
			bestFlips = total
			s.Best = pat
		}
		if worstFlips < 0 || total < worstFlips {
			worstFlips = total
		}
	}
	s.BestFlips = bestFlips
	s.WorstFlips = worstFlips
	return s, nil
}

// MeasureScope bounds one module's fleet measurement.
type MeasureScope struct {
	// Scale bounds the measurement work; the zero value selects
	// DefaultScale().
	Scale Scale
	// Bank under test.
	Bank int
	// Temps is the BER temperature grid; empty selects StudyTemps().
	Temps []float64
}

// normalize fills the scope's defaults; a caller-supplied temperature
// grid with a non-positive step is rejected with a *TempStepError.
func (sc MeasureScope) normalize() (MeasureScope, error) {
	err := FillMeasureDefaults(&sc.Scale, nil, nil, &sc.Temps)
	return sc, err
}

// Per-kind victim budgets, matching the corresponding experiment
// drivers in internal/exp.
const (
	wcdpProbeRows    = 3
	wcdpSurveyRows   = 6
	berMeasureRows   = 16
	hcProfileRows    = 24
	spatialRowBudget = 40
)

// moduleWCDP finds the module's worst-case pattern on a small victim
// probe, the first step of every per-module measurement.
func (t *Tester) moduleWCDP(ctx context.Context, sc MeasureScope) (PatternKind, error) {
	victims := sc.Scale.SampleRows(t.b.Geometry(), wcdpProbeRows)
	if len(victims) == 0 {
		return PatCheckered, fmt.Errorf("rowhammer: no victim rows available")
	}
	s, err := t.SurveyPatterns(ctx, sc.Bank, victims, sc.Scale.Hammers)
	if err != nil {
		return PatCheckered, err
	}
	return s.Best, nil
}

// MeasureModuleWCDP surveys every Table 1 pattern on the module and
// reports the worst-case pattern and its gain over the weakest one.
func (t *Tester) MeasureModuleWCDP(ctx context.Context, sc MeasureScope) (PatternKind, map[string]float64, map[string][]float64, error) {
	sc, err := sc.normalize()
	if err != nil {
		return PatCheckered, nil, nil, err
	}
	victims := sc.Scale.SampleRows(t.b.Geometry(), wcdpSurveyRows)
	s, err := t.SurveyPatterns(ctx, sc.Bank, victims, sc.Scale.Hammers)
	if err != nil {
		return PatCheckered, nil, nil, err
	}
	perPattern := make([]float64, 0, len(s.Totals))
	for _, pf := range s.Totals {
		perPattern = append(perPattern, float64(pf.Flips))
	}
	metrics := map[string]float64{
		"best_flips":  float64(s.BestFlips),
		"worst_flips": float64(s.WorstFlips),
		// Add-one smoothing: sparse modules can have zero-flip weakest
		// patterns.
		"gain": float64(s.BestFlips+1) / float64(s.WorstFlips+1),
	}
	series := map[string][]float64{"pattern_flips": perPattern}
	return s.Best, metrics, series, nil
}

// MeasureModuleHCFirst measures the module's per-row HCfirst profile
// under its worst-case pattern — the per-module core of the Fig. 11
// row-variation analysis.
func (t *Tester) MeasureModuleHCFirst(ctx context.Context, sc MeasureScope) (PatternKind, map[string]float64, map[string][]float64, error) {
	sc, err := sc.normalize()
	if err != nil {
		return PatCheckered, nil, nil, err
	}
	pat, err := t.moduleWCDP(ctx, sc)
	if err != nil {
		return pat, nil, nil, err
	}
	rows := sc.Scale.SampleRows(t.b.Geometry(), hcProfileRows)
	profile, err := t.RowHCFirstProfileCtx(ctx, sc.Bank, rows, HCFirstConfig{
		Pattern: pat, MaxHammers: sc.Scale.MaxHammers,
	}, sc.Scale.Repetitions)
	if err != nil {
		return pat, nil, nil, err
	}
	hcs := VulnerableHCs(profile)
	metrics := map[string]float64{
		"rows":       float64(len(rows)),
		"vulnerable": float64(len(hcs)),
	}
	if len(hcs) > 0 {
		s := stats.Summarize(hcs)
		metrics["hc_min"] = s.Min
		metrics["hc_median"] = s.Median
		metrics["hc_p90"] = s.P90
		metrics["hc_mean"] = s.Mean
	}
	series := map[string][]float64{"hc": hcs}
	return pat, metrics, series, nil
}

// MeasureModuleBER sweeps the module across the temperature grid and
// reports per-temperature bit error rates plus the §5 temperature-
// range statistics (no-gap / full-range fractions).
func (t *Tester) MeasureModuleBER(ctx context.Context, sc MeasureScope) (PatternKind, map[string]float64, map[string][]float64, error) {
	sc, err := sc.normalize()
	if err != nil {
		return PatCheckered, nil, nil, err
	}
	pat, err := t.moduleWCDP(ctx, sc)
	if err != nil {
		return pat, nil, nil, err
	}
	rows := sc.Scale.SampleRows(t.b.Geometry(), berMeasureRows)
	sweep, err := t.TemperatureSweepCtx(ctx, TempSweepConfig{
		Bank:        sc.Bank,
		Victims:     rows,
		Temps:       sc.Temps,
		Hammers:     sc.Scale.Hammers,
		Pattern:     pat,
		Repetitions: sc.Scale.Repetitions,
	})
	if err != nil {
		return pat, nil, nil, err
	}
	rowBits := float64(t.b.Geometry().RowBits())
	flipsPerTemp := make([]float64, len(sweep.Temps))
	berPerTemp := make([]float64, len(sweep.Temps))
	total := 0.0
	for ti := range sweep.Temps {
		flips := 0
		for _, hr := range sweep.Flips[ti] {
			flips += hr.Victim.Count()
		}
		mean := float64(flips) / float64(len(rows))
		flipsPerTemp[ti] = mean
		berPerTemp[ti] = mean / rowBits
		total += float64(flips)
	}
	cluster := sweep.ClusterByRange()
	metrics := map[string]float64{
		"flips_total":      total,
		"ber_mean":         stats.Mean(berPerTemp),
		"ber_max":          stats.Max(berPerTemp),
		"vulnerable_cells": float64(cluster.Total),
		"no_gap_frac":      cluster.NoGapFraction(),
		"full_range_frac":  cluster.FullRangeFraction(),
	}
	series := map[string][]float64{
		"temps":          sweep.Temps,
		"flips_per_temp": flipsPerTemp,
		"ber_per_temp":   berPerTemp,
	}
	return pat, metrics, series, nil
}

// MeasureModuleSpatial profiles the module's HCfirst across rows and
// subarrays — the per-module core of the §7 spatial-variation
// analyses (Figs. 11 and 14).
func (t *Tester) MeasureModuleSpatial(ctx context.Context, sc MeasureScope) (PatternKind, map[string]float64, map[string][]float64, error) {
	sc, err := sc.normalize()
	if err != nil {
		return PatCheckered, nil, nil, err
	}
	pat, err := t.moduleWCDP(ctx, sc)
	if err != nil {
		return pat, nil, nil, err
	}
	rows := sc.Scale.SampleRows(t.b.Geometry(), spatialRowBudget)
	profile, err := t.RowHCFirstProfileCtx(ctx, sc.Bank, rows, HCFirstConfig{
		Pattern: pat, MaxHammers: sc.Scale.MaxHammers,
	}, sc.Scale.Repetitions)
	if err != nil {
		return pat, nil, nil, err
	}
	metrics := map[string]float64{"rows": float64(len(rows))}
	series := make(map[string][]float64)
	if summary, err := SummarizeRowVariation(profile); err == nil {
		metrics["vulnerable"] = float64(summary.Vulnerable)
		metrics["hc_min"] = summary.MinHC
		metrics["ratio_p99"] = summary.RatioP99
		metrics["ratio_p95"] = summary.RatioP95
		metrics["ratio_p90"] = summary.RatioP90
	} else {
		metrics["vulnerable"] = 0
	}
	subs := GroupBySubarray(t.b.Geometry(), profile)
	metrics["subarrays"] = float64(len(subs))
	subMin := make([]float64, 0, len(subs))
	subAvg := make([]float64, 0, len(subs))
	for _, s := range subs {
		subMin = append(subMin, s.Min)
		subAvg = append(subAvg, s.Avg)
	}
	series["sub_min"] = subMin
	series["sub_avg"] = subAvg
	if fit, err := FitSubarrayMinVsAvg(subs); err == nil {
		metrics["fit_slope"] = fit.Slope
		metrics["fit_r2"] = fit.R2
	}
	return pat, metrics, series, nil
}

// RowHCFirstProfileCtx is RowHCFirstProfile with cooperative
// cancellation between rows. With more than one worker configured
// (SetWorkers) the sampled rows are fanned out over hermetic bench
// clones and merged back in row order; each row's measurement is
// independent on real hardware too (writing the data pattern
// re-senses and resets every row the test touches), so the parallel
// profile is bit-identical to the serial one.
func (t *Tester) RowHCFirstProfileCtx(ctx context.Context, bank int, rows []int, cfg HCFirstConfig, reps int) ([]RowHC, error) {
	if t.effectiveWorkers() > 1 && len(rows) > 1 {
		return pool.Map(ctx, t.effectiveWorkers(), len(rows), func(i int) (RowHC, error) {
			sub, err := t.clone()
			if err != nil {
				return RowHC{}, err
			}
			c := cfg
			c.Bank = bank
			c.VictimPhys = rows[i]
			res, err := sub.HCFirstMin(c, reps)
			if err != nil {
				return RowHC{}, err
			}
			return RowHC{Row: rows[i], HCfirst: res.HCfirst, Found: res.Found}, nil
		})
	}
	out := make([]RowHC, 0, len(rows))
	for _, row := range rows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c := cfg
		c.Bank = bank
		c.VictimPhys = row
		res, err := t.HCFirstMin(c, reps)
		if err != nil {
			return nil, err
		}
		out = append(out, RowHC{Row: row, HCfirst: res.HCfirst, Found: res.Found})
	}
	return out, nil
}

// TemperatureSweepCtx is TemperatureSweep with cooperative
// cancellation between temperature points.
func (t *Tester) TemperatureSweepCtx(ctx context.Context, cfg TempSweepConfig) (*TempSweepResult, error) {
	return t.temperatureSweep(ctx, cfg)
}
