package rowhammer

import (
	"context"
	"fmt"
	"sort"

	"rowhammer/internal/stats"
)

// Spatial-variation measurements (§7): HCfirst across rows, bit-flip
// counts across columns, and per-subarray HCfirst statistics.

// RowHC pairs a physical row with its measured HCfirst.
type RowHC struct {
	Row     int
	HCfirst int64
	Found   bool
}

// RowHCFirstProfile measures HCfirst (minimum over repetitions) for
// every given victim row — the Fig. 11 measurement.
func (t *Tester) RowHCFirstProfile(bank int, rows []int, cfg HCFirstConfig, reps int) ([]RowHC, error) {
	return t.RowHCFirstProfileCtx(context.Background(), bank, rows, cfg, reps)
}

// VulnerableHCs extracts the HCfirst values of rows where flips were
// found, sorted descending (Fig. 11's x-axis ordering).
func VulnerableHCs(rows []RowHC) []float64 {
	var hcs []float64
	for _, r := range rows {
		if r.Found {
			hcs = append(hcs, float64(r.HCfirst))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(hcs)))
	return hcs
}

// RowVariationSummary holds Obsv. 12's headline statistics: how much
// larger the HCfirst of the P1/P5/P10 rows is than the most vulnerable
// row's.
type RowVariationSummary struct {
	MinHC                        float64
	RatioP99, RatioP95, RatioP90 float64
	Vulnerable                   int
}

// SummarizeRowVariation computes Obsv. 12's ratios: the paper reports
// that 99%/95%/90% of rows exhibit HCfirst ≥1.6×/2.0×/2.2× the
// minimum.
func SummarizeRowVariation(rows []RowHC) (RowVariationSummary, error) {
	hcs := VulnerableHCs(rows)
	if len(hcs) == 0 {
		return RowVariationSummary{}, fmt.Errorf("rowhammer: no vulnerable rows")
	}
	minHC := hcs[len(hcs)-1]
	var s RowVariationSummary
	s.MinHC = minHC
	s.Vulnerable = len(hcs)
	// "99% of rows have HCfirst at least r× the min" ⇔ the 1st
	// percentile (ascending) is r×min.
	asc := make([]float64, len(hcs))
	copy(asc, hcs)
	sort.Float64s(asc)
	s.RatioP99 = stats.Quantile(asc, 0.01) / minHC
	s.RatioP95 = stats.Quantile(asc, 0.05) / minHC
	s.RatioP90 = stats.Quantile(asc, 0.10) / minHC
	return s, nil
}

// ColumnAccumulator tallies bit flips per DRAM array column per chip
// (the Fig. 12 heatmap).
type ColumnAccumulator struct {
	geo Geometry
	// Counts[chip][arrayCol]
	Counts [][]int
}

// NewColumnAccumulator returns an accumulator for the geometry.
func NewColumnAccumulator(g Geometry) *ColumnAccumulator {
	a := &ColumnAccumulator{geo: g}
	a.Counts = make([][]int, g.Chips)
	for i := range a.Counts {
		a.Counts[i] = make([]int, g.ChipRowBits())
	}
	return a
}

// Add tallies one row's flips.
func (a *ColumnAccumulator) Add(fs FlipSet) {
	for _, bit := range fs.Bits {
		chip, col, line := a.geo.BitLocation(bit)
		a.Counts[chip][col*a.geo.ChipWidth+line]++
	}
}

// ZeroColumnFraction returns the fraction of (chip, column) positions
// with no flips at all.
func (a *ColumnAccumulator) ZeroColumnFraction() float64 {
	zero, total := 0, 0
	for _, chip := range a.Counts {
		for _, n := range chip {
			total++
			if n == 0 {
				zero++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zero) / float64(total)
}

// HotColumnFraction returns the fraction of columns with more than
// threshold flips.
func (a *ColumnAccumulator) HotColumnFraction(threshold int) float64 {
	hot, total := 0, 0
	for _, chip := range a.Counts {
		for _, n := range chip {
			total++
			if n > threshold {
				hot++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hot) / float64(total)
}

// ColumnVariation computes, per array column, the Fig. 13 metrics:
// the column's relative vulnerability (mean BER over chips normalized
// to the max column) and the cross-chip coefficient of variation.
func (a *ColumnAccumulator) ColumnVariation() (relVuln, cv []float64) {
	cols := a.geo.ChipRowBits()
	relVuln = make([]float64, cols)
	cv = make([]float64, cols)
	maxMean := 0.0
	for c := 0; c < cols; c++ {
		var vals []float64
		for chip := 0; chip < a.geo.Chips; chip++ {
			vals = append(vals, float64(a.Counts[chip][c]))
		}
		m := stats.Mean(vals)
		relVuln[c] = m
		cvv := stats.CV(vals)
		if cvv > 1 {
			cvv = 1 // the paper saturates CV at 1.0
		}
		cv[c] = cvv
		if m > maxMean {
			maxMean = m
		}
	}
	if maxMean > 0 {
		for c := range relVuln {
			relVuln[c] /= maxMean
		}
	}
	return relVuln, cv
}

// SubarrayStat summarizes one subarray's HCfirst distribution
// (Fig. 14's per-point data).
type SubarrayStat struct {
	Subarray int
	Min, Avg float64
	HCs      []float64
}

// GroupBySubarray splits per-row HCfirst measurements into per-
// subarray statistics.
func GroupBySubarray(g Geometry, rows []RowHC) []SubarrayStat {
	bySub := make(map[int][]float64)
	for _, r := range rows {
		if !r.Found {
			continue
		}
		bySub[g.SubarrayOf(r.Row)] = append(bySub[g.SubarrayOf(r.Row)], float64(r.HCfirst))
	}
	subs := make([]int, 0, len(bySub))
	for s := range bySub {
		subs = append(subs, s)
	}
	sort.Ints(subs)
	var out []SubarrayStat
	for _, s := range subs {
		hcs := bySub[s]
		out = append(out, SubarrayStat{
			Subarray: s,
			Min:      stats.Min(hcs),
			Avg:      stats.Mean(hcs),
			HCs:      hcs,
		})
	}
	return out
}

// FitSubarrayMinVsAvg fits min = slope×avg + intercept across
// subarray statistics (Fig. 14's regression line).
func FitSubarrayMinVsAvg(subs []SubarrayStat) (stats.LinearFit, error) {
	var x, y []float64
	for _, s := range subs {
		x = append(x, s.Avg)
		y = append(y, s.Min)
	}
	return stats.Linear(x, y)
}

// SubarraySimilarity computes the normalized Bhattacharyya
// coefficient between two subarray HCfirst distributions (Fig. 15):
// 1.0 means identical distributions. The histogram bin count adapts to
// the sample size so small profiles aren't dominated by empty-bin
// noise.
func SubarraySimilarity(a, b SubarrayStat) float64 {
	n := len(a.HCs)
	if len(b.HCs) < n {
		n = len(b.HCs)
	}
	bins := n / 3
	if bins < 3 {
		bins = 3
	}
	if bins > 16 {
		bins = 16
	}
	return stats.BhattacharyyaCoefficient(a.HCs, b.HCs, bins)
}
