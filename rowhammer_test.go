package rowhammer

import (
	"testing"

	"rowhammer/internal/dram"
)

// smallGeometry keeps core-library tests fast.
func smallGeometry() Geometry {
	return Geometry{Banks: 2, RowsPerBank: 512, SubarrayRows: 256, Chips: 8, ChipWidth: 8, ColumnsPerRow: 64}
}

func newBenchFor(t *testing.T, name string, seed uint64) *Bench {
	t.Helper()
	b, err := NewBench(BenchConfig{Profile: ProfileByName(name), Seed: seed, Geometry: smallGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBenchValidation(t *testing.T) {
	if _, err := NewBench(BenchConfig{}); err == nil {
		t.Fatal("expected error for missing profile")
	}
	b, err := NewBench(BenchConfig{Profile: ProfileByName("A"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Geometry() != DefaultDDR4Geometry() {
		t.Fatal("default geometry not applied")
	}
	if b.Module.Temperature() < 49 || b.Module.Temperature() > 51 {
		t.Fatalf("bench should start settled at 50 °C, got %v", b.Module.Temperature())
	}
}

func TestHammerDeterministic(t *testing.T) {
	mk := func() HammerResult {
		b := newBenchFor(t, "A", 3)
		res, err := NewTester(b).Hammer(HammerConfig{
			Bank: 0, VictimPhys: 100, Hammers: 150_000, Pattern: PatCheckered, Trial: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Victim.Count() != b.Victim.Count() {
		t.Fatalf("non-deterministic: %d vs %d flips", a.Victim.Count(), b.Victim.Count())
	}
	for i := range a.Victim.Bits {
		if a.Victim.Bits[i] != b.Victim.Bits[i] {
			t.Fatal("flip positions differ across runs")
		}
	}
}

func TestHammerValidation(t *testing.T) {
	b := newBenchFor(t, "A", 3)
	tst := NewTester(b)
	cases := []HammerConfig{
		{Bank: 99, VictimPhys: 100, Hammers: 1000},
		{Bank: 0, VictimPhys: 0, Hammers: 1000},                     // bank edge
		{Bank: 0, VictimPhys: 255, Hammers: 1000},                   // subarray edge
		{Bank: 0, VictimPhys: 256, Hammers: 1000},                   // subarray edge
		{Bank: 0, VictimPhys: 511, Hammers: 1000},                   // bank edge
		{Bank: 0, VictimPhys: 100, Hammers: -5, Pattern: PatRandom}, // negative
	}
	for _, c := range cases {
		if _, err := tst.Hammer(c); err == nil {
			t.Errorf("expected error for %+v", c)
		}
	}
}

func TestMoreHammersMoreFlips(t *testing.T) {
	b := newBenchFor(t, "A", 5)
	tst := NewTester(b)
	prev := -1
	for _, hc := range []int64{50_000, 150_000, 400_000} {
		total := 0
		for _, victim := range []int{50, 100, 150, 200} {
			res, err := tst.Hammer(HammerConfig{Bank: 0, VictimPhys: victim, Hammers: hc, Pattern: PatCheckered, Trial: 1})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Victim.Count()
		}
		if total < prev {
			t.Fatalf("flips decreased with hammer count: %d → %d", prev, total)
		}
		prev = total
	}
	if prev == 0 {
		t.Fatal("400K hammers should flip cells")
	}
}

func TestSingleSidedVictimsWeaker(t *testing.T) {
	// Across rows, double-sided victims must flip more than the ±2
	// single-sided victims (Obsv. from the original RowHammer work).
	b := newBenchFor(t, "A", 7)
	tst := NewTester(b)
	ds, ss := 0, 0
	for victim := 20; victim < 120; victim += 4 {
		res, err := tst.Hammer(HammerConfig{Bank: 0, VictimPhys: victim, Hammers: 300_000, Pattern: PatCheckered, Trial: 1})
		if err != nil {
			t.Fatal(err)
		}
		ds += res.Victim.Count()
		ss += res.SingleLo.Count() + res.SingleHi.Count()
	}
	if ds == 0 {
		t.Fatal("no double-sided flips")
	}
	if ss >= ds {
		t.Fatalf("single-sided flips %d >= double-sided %d", ss, ds)
	}
}

func TestHCFirstConsistentWithBER(t *testing.T) {
	b := newBenchFor(t, "B", 9)
	tst := NewTester(b)
	const victim = 77
	hc, err := tst.HCFirst(HCFirstConfig{Bank: 0, VictimPhys: victim, Pattern: PatCheckered, Trial: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hc.Found {
		t.Skip("row not vulnerable within 512K")
	}
	// At HCfirst there must be flips; at HCfirst - 8*accuracy there
	// must be none (monotone threshold model).
	res, err := tst.Hammer(HammerConfig{Bank: 0, VictimPhys: victim, Hammers: hc.HCfirst, Pattern: PatCheckered, Trial: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim.Count() == 0 {
		t.Fatalf("no flips at measured HCfirst %d", hc.HCfirst)
	}
	below := hc.HCfirst - 8*HCFirstAccuracy
	if below > 0 {
		res, err = tst.Hammer(HammerConfig{Bank: 0, VictimPhys: victim, Hammers: below, Pattern: PatCheckered, Trial: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Victim.Count() != 0 {
			t.Fatalf("flips at %d, well below HCfirst %d", below, hc.HCfirst)
		}
	}
}

func TestHCFirstMinTakesMinimum(t *testing.T) {
	b := newBenchFor(t, "A", 11)
	tst := NewTester(b)
	cfg := HCFirstConfig{Bank: 0, VictimPhys: 60, Pattern: PatCheckered}
	single, err := tst.HCFirst(func() HCFirstConfig { c := cfg; c.Trial = 1; return c }())
	if err != nil {
		t.Fatal(err)
	}
	multi, err := tst.HCFirstMin(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if single.Found && (!multi.Found || multi.HCfirst > single.HCfirst) {
		t.Fatalf("min over reps %v should be <= single trial %v", multi.HCfirst, single.HCfirst)
	}
}

func TestWorstCasePatternBeatsAverage(t *testing.T) {
	b := newBenchFor(t, "C", 13)
	tst := NewTester(b)
	victims := []int{40, 80, 120}
	wc, err := tst.WorstCasePattern(0, victims, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	count := func(p PatternKind) int {
		total := 0
		for _, v := range victims {
			res, err := tst.Hammer(HammerConfig{Bank: 0, VictimPhys: v, Hammers: 200_000, Pattern: p, Trial: 1})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Victim.Count()
		}
		return total
	}
	best := count(wc)
	for _, p := range AllPatterns {
		if c := count(p); c > best {
			t.Fatalf("pattern %v (%d flips) beats WCDP %v (%d)", p, c, wc, best)
		}
	}
}

func TestBERWorstRepetition(t *testing.T) {
	b := newBenchFor(t, "A", 15)
	tst := NewTester(b)
	cfg := HammerConfig{Bank: 0, VictimPhys: 90, Hammers: 150_000, Pattern: PatCheckered}
	worst, err := tst.BER(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 1; rep <= 3; rep++ {
		c := cfg
		c.Trial = uint64(rep)
		res, err := tst.Hammer(c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Victim.Count() > worst.Victim.Count() {
			t.Fatalf("BER %d not the worst repetition (%d)", worst.Victim.Count(), res.Victim.Count())
		}
	}
}

func TestRecoverMappingAllProfiles(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			b, err := NewBench(BenchConfig{Profile: p, Seed: 21, Geometry: smallGeometry()})
			if err != nil {
				t.Fatal(err)
			}
			tst := NewTester(b)
			// Deliberately start from an unknown mapping.
			tst.UseMapping(dram.DirectRemap{})
			scheme, err := tst.RecoverMapping(0, []int{40, 52, 100}, 16)
			if err != nil {
				t.Fatal(err)
			}
			// The recovered scheme must agree with the module's real
			// mapping on every row's neighbors.
			real := b.Module.Remap()
			for l := 8; l < 120; l++ {
				if scheme.ToPhysical(l) != real.ToPhysical(l) {
					t.Fatalf("recovered %s disagrees with real %s at row %d",
						scheme.Name(), real.Name(), l)
				}
			}
		})
	}
}

func TestAdjacencyProbeFindsPhysicalNeighbors(t *testing.T) {
	b := newBenchFor(t, "B", 23) // MirrorRemap
	tst := NewTester(b)
	const logicalRow = 24 // physical 31 under mirror: neighbors phys 30, 32 = logical 25, 32... compute below
	neighbors, err := tst.AdjacencyProbe(0, logicalRow, 16)
	if err != nil {
		t.Fatal(err)
	}
	real := b.Module.Remap()
	phys := real.ToPhysical(logicalRow)
	want := map[int]bool{
		real.ToLogical(phys - 1): true,
		real.ToLogical(phys + 1): true,
	}
	for _, n := range neighbors {
		if !want[n] {
			t.Fatalf("probe found %v, want logical neighbors of physical %d (%v)", neighbors, phys, want)
		}
	}
	if len(neighbors) != 2 {
		t.Fatalf("expected 2 neighbors, got %v", neighbors)
	}
}

func TestTemperatureSweepClustering(t *testing.T) {
	b := newBenchFor(t, "A", 25)
	tst := NewTester(b)
	victims := []int{30, 60, 90, 120, 150, 180}
	sweep, err := tst.TemperatureSweep(TempSweepConfig{
		Bank: 0, Victims: victims, Hammers: 200_000, Pattern: PatCheckered, Repetitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Flips) != 9 {
		t.Fatalf("expected 9 temperature points, got %d", len(sweep.Flips))
	}
	m := sweep.ClusterByRange()
	if m.Total == 0 {
		t.Fatal("no vulnerable cells observed across sweep")
	}
	// Obsv. 1: overwhelming majority flip with no gaps.
	if f := m.NoGapFraction(); f < 0.9 {
		t.Fatalf("no-gap fraction %v, want > 0.9", f)
	}
	// Obsv. 2: a significant fraction spans the full range.
	if f := m.FullRangeFraction(); f < 0.02 {
		t.Fatalf("full-range fraction %v too small", f)
	}
	// Sanity: fractions sum to 1.
	sum := 0.0
	for hi := range m.Temps {
		for lo := 0; lo <= hi; lo++ {
			sum += m.Fraction(lo, hi)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("cluster fractions sum to %v", sum)
	}
}

func TestRowVariationSummary(t *testing.T) {
	rows := []RowHC{
		{Row: 1, HCfirst: 100, Found: true},
		{Row: 2, HCfirst: 200, Found: true},
		{Row: 3, HCfirst: 300, Found: true},
		{Row: 4, HCfirst: 0, Found: false},
	}
	s, err := SummarizeRowVariation(rows)
	if err != nil {
		t.Fatal(err)
	}
	if s.MinHC != 100 || s.Vulnerable != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if _, err := SummarizeRowVariation(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestColumnAccumulator(t *testing.T) {
	g := smallGeometry()
	a := NewColumnAccumulator(g)
	// Bit 0 = chip 0, col 0, line 0. BitIndex(1, 2, 3): chip 1, array
	// col 2*8+3=19.
	a.Add(FlipSet{Bits: []int{0, g.BitIndex(1, 2, 3), g.BitIndex(1, 2, 3)}})
	if a.Counts[0][0] != 1 {
		t.Fatal("bit 0 not counted")
	}
	if a.Counts[1][19] != 2 {
		t.Fatalf("chip1/col19 = %d, want 2", a.Counts[1][19])
	}
	if zf := a.ZeroColumnFraction(); zf >= 1 || zf <= 0.9 {
		t.Fatalf("zero fraction %v", zf)
	}
	if hf := a.HotColumnFraction(1); hf <= 0 {
		t.Fatalf("hot fraction %v", hf)
	}
	rel, cv := a.ColumnVariation()
	if rel[19] != 1 { // hottest column normalizes to 1 (mean 2/8 is max)
		t.Fatalf("relative vulnerability = %v", rel[19])
	}
	if cv[19] <= 0 {
		t.Fatal("cross-chip CV should be positive for a single-chip column")
	}
}

func TestGroupBySubarrayAndFit(t *testing.T) {
	g := smallGeometry() // 256-row subarrays
	var rows []RowHC
	for r := 10; r < 250; r += 10 {
		rows = append(rows, RowHC{Row: r, HCfirst: int64(100_000 + r*100), Found: true})
	}
	for r := 266; r < 500; r += 10 {
		rows = append(rows, RowHC{Row: r, HCfirst: int64(120_000 + r*100), Found: true})
	}
	subs := GroupBySubarray(g, rows)
	if len(subs) != 2 {
		t.Fatalf("expected 2 subarrays, got %d", len(subs))
	}
	for _, s := range subs {
		if s.Min > s.Avg {
			t.Fatalf("subarray %d: min %v > avg %v", s.Subarray, s.Min, s.Avg)
		}
	}
	if _, err := FitSubarrayMinVsAvg(subs); err != nil {
		t.Fatal(err)
	}
	sim := SubarraySimilarity(subs[0], subs[1])
	if sim < 0 || sim > 1 {
		t.Fatalf("similarity %v outside [0,1]", sim)
	}
}

func TestScaleRegionRows(t *testing.T) {
	g := smallGeometry()
	s := Scale{RowsPerRegion: 16, Regions: 3}
	rows := s.RegionRows(g)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	seen := map[int]bool{}
	for _, r := range rows {
		if r < 0 || r >= g.RowsPerBank {
			t.Fatalf("row %d out of range", r)
		}
		if r%g.SubarrayRows == 0 || r%g.SubarrayRows == g.SubarrayRows-1 {
			t.Fatalf("row %d on subarray edge", r)
		}
		if seen[r] {
			t.Fatalf("duplicate row %d", r)
		}
		seen[r] = true
	}
}

func TestSetTemperatureReflectsInModule(t *testing.T) {
	b := newBenchFor(t, "D", 27)
	if err := b.SetTemperature(85); err != nil {
		t.Fatal(err)
	}
	if got := b.Module.Temperature(); got < 84 || got > 86 {
		t.Fatalf("module temperature %v after settling at 85", got)
	}
}

func TestStudyTemps(t *testing.T) {
	temps := StudyTemps()
	if len(temps) != 9 || temps[0] != 50 || temps[8] != 90 {
		t.Fatalf("temps = %v", temps)
	}
}

func TestRecoverMappingTableMatchesReality(t *testing.T) {
	// Scheme-free recovery: reconstruct a 16-row block's mapping table
	// for a mirrored module and verify physical adjacency agrees with
	// the real internal scheme (orientation-insensitive: the probe
	// cannot tell a path from its reverse).
	b := newBenchFor(t, "B", 61) // MirrorRemap
	tst := NewTester(b)
	tst.UseMapping(dram.DirectRemap{}) // start ignorant
	const blockStart, blockLen = 16, 16
	table, err := tst.RecoverMappingTable(0, blockStart, blockLen)
	if err != nil {
		t.Fatal(err)
	}
	real := b.Module.Remap()
	for p := blockStart + 1; p < blockStart+blockLen; p++ {
		a := table.ToLogical(p - 1)
		bRow := table.ToLogical(p)
		d := real.ToPhysical(a) - real.ToPhysical(bRow)
		if d != 1 && d != -1 {
			t.Fatalf("recovered neighbors %d,%d not physically adjacent (Δ=%d)", a, bRow, d)
		}
	}
	// The recovered table must now drive correct double-sided attacks:
	// hammering "physical" neighbors of a mid-block victim flips it.
	victim := blockStart + blockLen/2
	res, err := tst.Hammer(HammerConfig{
		Bank: 0, VictimPhys: victim, Hammers: 400_000, Pattern: PatCheckered, Trial: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim.Count() == 0 {
		t.Fatal("double-sided attack through the recovered table produced no flips")
	}
}

func TestRecoverMappingTableValidation(t *testing.T) {
	b := newBenchFor(t, "A", 63)
	if _, err := NewTester(b).RecoverMappingTable(0, 0, 2); err == nil {
		t.Fatal("expected error for tiny block")
	}
}
