// Quickstart: build a simulated DRAM module, mount it on the SoftMC
// test bench, find its worst-case data pattern, hammer a victim row,
// and binary-search its HCfirst — the core §4.2 methodology in ~40
// lines.
package main

import (
	"fmt"
	"log"

	rh "rowhammer"
)

func main() {
	// A Micron-like DDR4 module; the seed selects the module instance
	// (process variation) deterministically.
	bench, err := rh.NewBench(rh.BenchConfig{
		Profile: rh.ProfileByName("A"),
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tester := rh.NewTester(bench)

	// Worst-case data pattern over a few sample victims (§4.2).
	victims := []int{100, 200, 300}
	pattern, err := tester.WorstCasePattern(0, victims, 150_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case data pattern: %v\n", pattern)

	// Double-sided hammer at the paper's BER operating point.
	res, err := tester.Hammer(rh.HammerConfig{
		Bank:       0,
		VictimPhys: 200,
		Hammers:    150_000,
		Pattern:    pattern,
		Trial:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("150K hammers on row 200: %d flips in the victim, %d/%d in the ±2 single-sided victims (%.2f ms of DRAM time)\n",
		res.Victim.Count(), res.SingleLo.Count(), res.SingleHi.Count(),
		float64(res.DurationP)/1e9)

	// HCfirst via the paper's binary search (256K start, Δ halving to
	// 512), minimum over 5 repetitions.
	hc, err := tester.HCFirstMin(rh.HCFirstConfig{
		Bank:       0,
		VictimPhys: 200,
		Pattern:    pattern,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	if hc.Found {
		fmt.Printf("HCfirst of row 200: %d hammers (%d probes)\n", hc.HCfirst, hc.Probes)
	} else {
		fmt.Println("row 200 shows no flips up to 512K hammers")
	}

	// Hotter chip, same row (Obsv. 4/6: Mfr A worsens with heat).
	if err := bench.SetTemperature(90); err != nil {
		log.Fatal(err)
	}
	hot, err := tester.Hammer(rh.HammerConfig{
		Bank: 0, VictimPhys: 200, Hammers: 150_000, Pattern: pattern, Trial: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same test at 90 °C: %d flips (50 °C: %d)\n", hot.Victim.Count(), res.Victim.Count())
}
