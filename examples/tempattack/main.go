// Tempattack demonstrates the paper's Attack Improvements 1 and 2:
// an attacker who can observe or steer the DRAM temperature
//
//  1. profiles candidate victim rows across temperatures and picks the
//     row whose HCfirst is lowest at the temperature the attack will
//     run at (fewer hammers ⇒ faster, stealthier attack), and
//  2. plants a "thermometer" bit: a cell whose vulnerable temperature
//     range only starts at the target temperature, so a RowHammer
//     probe of that single cell reveals when the chip is hot enough to
//     arm the main attack.
package main

import (
	"fmt"
	"log"

	rh "rowhammer"
	"rowhammer/internal/attack"
)

func main() {
	bench, err := rh.NewBench(rh.BenchConfig{
		Profile: rh.ProfileByName("A"),
		Seed:    7,
		Geometry: rh.Geometry{
			Banks: 1, RowsPerBank: 1024, SubarrayRows: 512,
			Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	tester := rh.NewTester(bench)

	// Improvement 1: temperature-resolved victim planning.
	candidates := []int{50, 150, 250, 350, 450, 550, 650, 750}
	planner, err := attack.BuildPlanner(tester, 0, candidates, []float64{50, 70, 90})
	if err != nil {
		log.Fatal(err)
	}
	for _, temp := range []float64{50, 90} {
		best, hc, err := planner.BestRowAt(temp)
		if err != nil {
			log.Fatal(err)
		}
		median, err := planner.MedianRowAt(temp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attack at %2.0f °C: informed choice row %d needs %d hammers; an uninformed (median) row needs %d (%.0f%% more)\n",
			temp, best.Row, hc, median, 100*(float64(median)/float64(hc)-1))
	}

	// Improvement 2: find a cell usable as an "at or above 70 °C"
	// trigger and demonstrate it.
	sweep, err := tester.TemperatureSweep(rh.TempSweepConfig{
		Bank:    0,
		Victims: candidates,
		Hammers: 300_000,
		Pattern: rh.PatCheckered,
	})
	if err != nil {
		log.Fatal(err)
	}
	trig, err := attack.FindTrigger(sweep, attack.AtOrAbove, 70, 0, 300_000, rh.PatCheckered)
	if err != nil {
		fmt.Println("no trigger cell in this module sample:", err)
		return
	}
	fmt.Printf("trigger cell: row %d bit %d (flips only at ≥70 °C)\n", trig.Row, trig.Bit)
	for _, temp := range []float64{55, 65, 75, 85} {
		if err := bench.SetTemperature(temp); err != nil {
			log.Fatal(err)
		}
		fired, err := trig.Probe(tester, 1)
		if err != nil {
			log.Fatal(err)
		}
		state := "dormant"
		if fired {
			state = "ARMED"
		}
		fmt.Printf("  chip at %2.0f °C → trigger %s\n", temp, state)
	}
}
