// Subarrayprofile demonstrates Defense Improvement 2: because
// subarrays within a module share very similar HCfirst distributions
// (Obsv. 15/16), profiling one subarray plus a manufacturer-level
// min-vs-avg linear model predicts a whole module's worst-case
// HCfirst at a fraction of the profiling cost.
package main

import (
	"fmt"
	"log"

	rh "rowhammer"
)

// profileModule measures per-subarray HCfirst statistics of one module
// instance.
func profileModule(seed uint64, geometry rh.Geometry, rowsPerSub int) ([]rh.SubarrayStat, error) {
	bench, err := rh.NewBench(rh.BenchConfig{
		Profile:  rh.ProfileByName("C"),
		Seed:     seed,
		Geometry: geometry,
	})
	if err != nil {
		return nil, err
	}
	tester := rh.NewTester(bench)
	var rows []int
	step := geometry.SubarrayRows / (rowsPerSub + 1)
	for sub := 0; sub < geometry.Subarrays(); sub++ {
		for k := 1; k <= rowsPerSub; k++ {
			rows = append(rows, sub*geometry.SubarrayRows+k*step)
		}
	}
	profile, err := tester.RowHCFirstProfile(0, rows, rh.HCFirstConfig{Pattern: rh.PatCheckered}, 1)
	if err != nil {
		return nil, err
	}
	return rh.GroupBySubarray(geometry, profile), nil
}

func main() {
	geometry := rh.Geometry{
		Banks: 1, RowsPerBank: 2048, SubarrayRows: 256,
		Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
	}

	// Step 1: fully profile two "reference" modules of the
	// manufacturer and fit the min-vs-avg relation (Fig. 14).
	var training []rh.SubarrayStat
	for seed := uint64(100); seed < 102; seed++ {
		subs, err := profileModule(seed, geometry, 10)
		if err != nil {
			log.Fatal(err)
		}
		training = append(training, subs...)
	}
	fit, err := rh.FitSubarrayMinVsAvg(training)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference fit over %d subarrays: min = %.2f x avg %+.0f (R²=%.2f)\n",
		fit.N, fit.Slope, fit.Intercept, fit.R2)

	// Through-origin ratio estimator: robust for transferring across
	// modules whose absolute HCfirst levels differ.
	ratioSum := 0.0
	for _, s := range training {
		ratioSum += s.Min / s.Avg
	}
	ratio := ratioSum / float64(len(training))

	// Step 2: a *new* module arrives. Profile just one of its eight
	// subarrays and predict the module's worst case.
	newModule, err := profileModule(999, geometry, 10)
	if err != nil {
		log.Fatal(err)
	}
	sampled := newModule[0]
	predicted := ratio * sampled.Avg

	trueMin := newModule[0].Min
	for _, s := range newModule[1:] {
		if s.Min < trueMin {
			trueMin = s.Min
		}
	}
	fmt.Printf("new module: sampled subarray avg HCfirst %.0f\n", sampled.Avg)
	fmt.Printf("predicted module worst case: %.0f   (true: %.0f, error %+.0f%%)\n",
		predicted, trueMin, 100*(predicted-trueMin)/trueMin)
	fmt.Printf("profiling cost: 1 of %d subarrays → %dx faster\n",
		len(newModule), len(newModule))

	// Similarity check backing the method (Obsv. 16).
	sim := rh.SubarraySimilarity(newModule[0], newModule[len(newModule)-1])
	fmt.Printf("Bhattacharyya similarity of the module's first and last subarray: %.2f (1.0 = identical)\n", sim)
}
