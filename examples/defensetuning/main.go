// Defensetuning demonstrates Defense Improvement 1: configuring
// RowHammer defenses with measured, row-aware HCfirst thresholds
// instead of a single worst-case value.
//
// It profiles a module's rows, derives the worst-case and
// 95th-percentile HCfirst, shows the area savings of a row-aware
// Graphene/BlockHammer configuration, and then runs a live
// double-sided attack against a Graphene tracker to confirm the
// protection holds.
package main

import (
	"fmt"
	"log"

	rh "rowhammer"
	"rowhammer/internal/defense"
)

func main() {
	geometry := rh.Geometry{
		Banks: 1, RowsPerBank: 1024, SubarrayRows: 512,
		Chips: 8, ChipWidth: 8, ColumnsPerRow: 64,
	}
	bench, err := rh.NewBench(rh.BenchConfig{
		Profile:  rh.ProfileByName("C"),
		Seed:     11,
		Geometry: geometry,
	})
	if err != nil {
		log.Fatal(err)
	}
	tester := rh.NewTester(bench)

	// Profile HCfirst across a sample of rows (Fig. 11 methodology).
	var rows []int
	for r := 10; r < 1000; r += 25 {
		if r%512 == 0 || r%512 == 511 {
			continue
		}
		rows = append(rows, r)
	}
	profile, err := tester.RowHCFirstProfile(0, rows, rh.HCFirstConfig{Pattern: rh.PatCheckered}, 3)
	if err != nil {
		log.Fatal(err)
	}
	summary, err := rh.SummarizeRowVariation(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d vulnerable rows: min HCfirst %.0f; 95%% of rows ≥ %.1fx the minimum\n",
		summary.Vulnerable, summary.MinHC, summary.RatioP95)

	// Row-aware configuration: worst case for the weak 5%, relaxed
	// threshold for the rest (Obsv. 12).
	cfgRA := defense.RowAwareConfig{
		WeakRowFraction: 0.05,
		ThresholdWeak:   int64(summary.MinHC),
		ThresholdStrong: int64(summary.MinHC * summary.RatioP95),
		RowsPerBank:     geometry.RowsPerBank,
	}
	fmt.Printf("Graphene area: %.2f%% of die worst-case → %.2f%% row-aware (%.0f%% saving)\n",
		100*defense.GrapheneArea(cfgRA.ThresholdWeak),
		100*defense.RowAwareGrapheneArea(cfgRA),
		100*defense.AreaReduction(defense.GrapheneArea(cfgRA.ThresholdWeak), defense.RowAwareGrapheneArea(cfgRA)))
	fmt.Printf("BlockHammer area: %.2f%% → %.2f%% (%.0f%% saving)\n",
		100*defense.BlockHammerArea(cfgRA.ThresholdWeak),
		100*defense.RowAwareBlockHammerArea(cfgRA),
		100*defense.AreaReduction(defense.BlockHammerArea(cfgRA.ThresholdWeak), defense.RowAwareBlockHammerArea(cfgRA)))

	// Live check: a 512K-hammer attack against a Graphene tracker
	// configured at half the measured worst case.
	victim := rows[len(rows)/2]
	threshold := int64(summary.MinHC / 2)
	tracker := defense.NewGraphene(threshold, 64, geometry.RowsPerBank)
	defended, err := defense.Evaluate(defense.EvalConfig{
		Bench: bench, Mechanism: tracker, Bank: 0, VictimPhys: victim,
		Hammers: 512_000, Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("512K-hammer attack vs Graphene(threshold=%d): %d bit flips, %d preventive refreshes\n",
		threshold, defended.VictimFlips, defended.PreventiveRefreshes)

	// The same attack, undefended.
	bench2, err := rh.NewBench(rh.BenchConfig{Profile: rh.ProfileByName("C"), Seed: 11, Geometry: geometry})
	if err != nil {
		log.Fatal(err)
	}
	bare, err := defense.Evaluate(defense.EvalConfig{
		Bench: bench2, Bank: 0, VictimPhys: victim,
		Hammers: 512_000, Pattern: rh.PatCheckered, Trial: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same attack, undefended: %d bit flips\n", bare.VictimFlips)
}
