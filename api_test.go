package rowhammer

import (
	"testing"

	"rowhammer/internal/dram"
)

func TestExportedAliases(t *testing.T) {
	if len(AllPatterns) != 7 {
		t.Fatalf("AllPatterns = %d entries", len(AllPatterns))
	}
	// Alias constants must match the dram package values.
	if PatRowStripe != dram.PatRowStripe || PatRandom != dram.PatRandom {
		t.Fatal("pattern aliases diverged")
	}
	if DDR4Timing() != dram.DDR4Timing() {
		t.Fatal("DDR4Timing alias diverged")
	}
	if DDR3Timing() != dram.DDR3Timing() {
		t.Fatal("DDR3Timing alias diverged")
	}
	if DefaultDDR4Geometry() != dram.DefaultDDR4Geometry() {
		t.Fatal("geometry alias diverged")
	}
	if len(Profiles()) != 4 {
		t.Fatal("Profiles alias broken")
	}
}

func TestScalePresets(t *testing.T) {
	d := DefaultScale()
	p := PaperScale()
	if d.Hammers != 150_000 || p.Hammers != 150_000 {
		t.Fatal("BER hammer count must be the paper's 150K")
	}
	if p.MaxHammers != 512_000 {
		t.Fatal("paper caps HCfirst searches at 512K")
	}
	if p.Repetitions != 5 {
		t.Fatal("paper repeats each test five times")
	}
	if p.RowsPerRegion != 8192 || p.Regions != 3 {
		t.Fatal("paper tests first/middle/last 8K rows")
	}
	if d.RowsPerRegion >= p.RowsPerRegion {
		t.Fatal("default scale should be smaller than paper scale")
	}
}

func TestPaperGeometryValid(t *testing.T) {
	g := dram.PaperDDR4Geometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.RowsPerBank < 8192*3 {
		t.Fatal("paper geometry must host three 8K-row regions")
	}
	// The paper-scale bench must construct (it allocates per-column
	// state eagerly; keep it feasible).
	b, err := NewBench(BenchConfig{Profile: ProfileByName("A"), Seed: 1, Geometry: g})
	if err != nil {
		t.Fatal(err)
	}
	rows := PaperScale().RegionRows(g)
	if len(rows) < 3*8000 {
		t.Fatalf("paper-scale regions yield %d rows", len(rows))
	}
	// One quick hammer at full geometry to prove the path works.
	res, err := NewTester(b).Hammer(HammerConfig{
		Bank: 0, VictimPhys: rows[len(rows)/2], Hammers: 150_000,
		Pattern: PatCheckered, Trial: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestHCFirstNotFoundOnInvulnerableConfig(t *testing.T) {
	// With a hammer cap far below the module's HCfirst, the search
	// reports not-found rather than a bogus value.
	b := newBenchFor(t, "D", 41) // highest BaseHC
	tst := NewTester(b)
	res, err := tst.HCFirst(HCFirstConfig{
		Bank: 0, VictimPhys: 100, Pattern: PatCheckered, Trial: 1,
		MaxHammers: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("found HCfirst %d under a 2K cap", res.HCfirst)
	}
	if res.Probes == 0 {
		t.Fatal("search did not probe")
	}
}

func TestTemperatureSweepValidation(t *testing.T) {
	b := newBenchFor(t, "A", 43)
	if _, err := NewTester(b).TemperatureSweep(TempSweepConfig{Bank: 0}); err == nil {
		t.Fatal("expected error for empty victim list")
	}
}

func TestBenchRetentionOption(t *testing.T) {
	ret := dram.DefaultRetentionConfig()
	b, err := NewBench(BenchConfig{
		Profile: ProfileByName("A"), Seed: 47, Geometry: smallGeometry(),
		Retention: &ret,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A normal-length test stays retention-clean.
	if _, err := NewTester(b).Hammer(HammerConfig{
		Bank: 0, VictimPhys: 100, Hammers: 150_000, Pattern: PatCheckered, Trial: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if n := b.Module.Stats().RetentionFlips; n != 0 {
		t.Fatalf("retention flips in a short test: %d", n)
	}
}
