package rowhammer

import (
	"context"
	"fmt"
	"math/bits"

	"rowhammer/internal/dram"
	"rowhammer/internal/pool"
	"rowhammer/internal/rng"
	"rowhammer/internal/softmc"
)

// patternRadius is how many rows on each side of the victim are
// initialized with the data pattern (Table 1: V±[1..8]).
const patternRadius = 8

// Tester drives the §4.2 RowHammer methodology against one bench.
type Tester struct {
	b *Bench
	// rowMap translates physical row indexes to the logical addresses
	// the controller must issue. It defaults to the module's real
	// mapping (the oracle); RecoverMapping derives it experimentally.
	rowMap dram.RemapScheme
	// patternSeed feeds the random data pattern.
	patternSeed uint64
	// workers bounds the pool used by the parallel measurement cores;
	// <1 selects one worker per CPU.
	workers int

	// Reusable scratch for the hot measurement loop (lazily built by
	// ensureScratch). A Tester is single-threaded — parallel shards run
	// on clones — so the buffers are never contended.
	bld      *softmc.Builder
	res      softmc.Result
	rowArena [][]uint64 // one pattern buffer per V±patternRadius position
	aggRows  [2]int
	salts    []uint64
}

// NewTester returns a Tester using the module's internal mapping as
// the physical-address oracle (as if reverse engineering already ran;
// use RecoverMapping to derive it from measurements instead).
func NewTester(b *Bench) *Tester {
	return &Tester{b: b, rowMap: b.Module.Remap(), patternSeed: rng.Hash64(b.Seed, 0xd7)}
}

// UseMapping overrides the physical→logical row mapping.
func (t *Tester) UseMapping(m dram.RemapScheme) { t.rowMap = m }

// SetWorkers bounds the worker pool of the parallel measurement cores
// (RowHCFirstProfileCtx, TemperatureSweepCtx, and the Measure* cores
// built on them). n < 1 selects one worker per CPU; n == 1 forces the
// serial in-place path. Results are bit-identical for every worker
// count — parallel shards run on hermetic bench clones that reproduce
// the serial measurements exactly.
func (t *Tester) SetWorkers(n int) { t.workers = n }

// effectiveWorkers resolves the configured worker count.
func (t *Tester) effectiveWorkers() int {
	if t.workers < 1 {
		return pool.DefaultWorkers()
	}
	return t.workers
}

// clone builds a hermetic copy of the tester on a fresh bench clone,
// preserving any mapping override. Clones are what the parallel
// measurement shards hammer, so concurrent shards never share mutable
// device state.
func (t *Tester) clone() (*Tester, error) {
	b, err := t.b.Clone()
	if err != nil {
		return nil, err
	}
	sub := NewTester(b)
	sub.rowMap = t.rowMap
	sub.patternSeed = t.patternSeed
	return sub, nil
}

// Bench returns the device under test.
func (t *Tester) Bench() *Bench { return t.b }

// InitPattern writes the Table 1 pattern into the victim and its
// ±8 physical neighbors (public entry point for attack/defense
// harnesses built on top of the Tester).
func (t *Tester) InitPattern(bank, victimPhys int, pat dram.PatternKind) error {
	return t.writePattern(bank, victimPhys, pat)
}

// ReadFlips reads a physical row and returns the bits differing from
// the pattern written for the given victim-relative position.
func (t *Tester) ReadFlips(bank, phys, victimPhys int, pat dram.PatternKind) (FlipSet, error) {
	return t.readRowFlips(bank, phys, victimPhys, pat)
}

// LogicalRow converts a physical row index to the controller-visible
// address under the Tester's current mapping.
func (t *Tester) LogicalRow(phys int) int { return t.logical(phys) }

// logical converts a physical row index to its controller-visible
// address.
func (t *Tester) logical(phys int) int { return t.rowMap.ToLogical(phys) }

// HammerConfig describes one double-sided RowHammer test.
type HammerConfig struct {
	Bank int
	// VictimPhys is the physical row index of the double-sided victim.
	VictimPhys int
	// Hammers is the number of aggressor-pair activations.
	Hammers int64
	// AggOnNs/AggOffNs are the aggressor on/off times; zero means the
	// timing minimums (tRAS/tRP), the paper's baseline.
	AggOnNs, AggOffNs float64
	// Pattern is the data pattern written to V±[0..8].
	Pattern dram.PatternKind
	// Trial salts measurement noise; each repetition uses a distinct
	// trial number.
	Trial uint64
}

// FlipSet records the bit flips observed in one row after a test.
type FlipSet struct {
	// Bits are the flipped bit indexes within the row.
	Bits []int
}

// Count returns the number of flips.
func (f FlipSet) Count() int { return len(f.Bits) }

// HammerResult is the outcome of one double-sided test: flips in the
// victim (distance 0) and in the two single-sided victims (±2).
type HammerResult struct {
	Victim    FlipSet
	SingleLo  FlipSet // physical victim-2
	SingleHi  FlipSet // physical victim+2
	DurationP dram.Picos
}

// TotalFlips returns flips across all three observed rows.
func (r HammerResult) TotalFlips() int {
	return r.Victim.Count() + r.SingleLo.Count() + r.SingleHi.Count()
}

// validateVictim checks that a double-sided attack on the victim is
// physically possible.
func (t *Tester) validateVictim(bank, victim int) error {
	g := t.b.Geometry()
	if bank < 0 || bank >= g.Banks {
		return fmt.Errorf("rowhammer: bank %d out of range", bank)
	}
	if victim < 1 || victim >= g.RowsPerBank-1 {
		return fmt.Errorf("rowhammer: victim row %d has no physical neighbor", victim)
	}
	if !g.SameSubarray(victim-1, victim) || !g.SameSubarray(victim, victim+1) {
		return fmt.Errorf("rowhammer: victim row %d sits on a subarray edge", victim)
	}
	return nil
}

// fillRow writes the pattern's fill words for one row into dst
// (hoisting the constant word of non-random patterns out of the
// column loop).
func (t *Tester) fillRow(dst []uint64, bank, phys, dist int, pat dram.PatternKind) {
	if pat == dram.PatRandom {
		for col := range dst {
			dst[col] = pat.FillWord(t.patternSeed, bank, phys, dist, col)
		}
		return
	}
	w := pat.FillWord(t.patternSeed, bank, phys, dist, 0)
	for col := range dst {
		dst[col] = w
	}
}

// ensureScratch lazily sizes the Tester's reusable buffers: a builder
// whose instruction buffer persists across programs, a result whose
// read buffer persists across runs, and one pattern buffer per
// V±patternRadius row position (WrRowShared aliases them until the
// program runs; the device copies words into bank storage, so reuse
// afterwards is safe).
func (t *Tester) ensureScratch() {
	if t.bld != nil {
		return
	}
	g := t.b.Geometry()
	t.bld = softmc.NewBuilder(t.b.Timing().TCK)
	n := 2*patternRadius + 1
	backing := make([]uint64, n*g.ColumnsPerRow)
	t.rowArena = make([][]uint64, n)
	for i := range t.rowArena {
		t.rowArena[i] = backing[i*g.ColumnsPerRow : (i+1)*g.ColumnsPerRow : (i+1)*g.ColumnsPerRow]
	}
}

// writePattern initializes the victim and its ±patternRadius physical
// neighbors with the pattern, via regular WR commands (issued as one
// bulk burst per row — bit-identical to the per-command sequence).
func (t *Tester) writePattern(bank, victim int, pat dram.PatternKind) error {
	t.ensureScratch()
	g := t.b.Geometry()
	tm := t.b.Timing()
	bld := t.bld.Reset()
	for phys := victim - patternRadius; phys <= victim+patternRadius; phys++ {
		if phys < 0 || phys >= g.RowsPerBank {
			continue
		}
		words := t.rowArena[phys-victim+patternRadius]
		logical := t.logical(phys)
		bld.Act(bank, logical).Wait(tm.TRCD)
		t.fillRow(words, bank, phys, phys-victim, pat)
		bld.WrRowShared(bank, words, tm.TCCD)
		bld.Wait(tm.TRAS). // generous: covers tWR and the tRAS remainder
					Pre(bank).Wait(tm.TRP)
	}
	return t.b.Exec.RunInto(bld.View(), &t.res)
}

// readRowFlips reads one physical row and returns the bits that differ
// from the pattern it was initialized with. Reading activates the row,
// which senses (and materializes) any accumulated disturbance first —
// exactly as on hardware.
func (t *Tester) readRowFlips(bank, phys, victim int, pat dram.PatternKind) (FlipSet, error) {
	var flips FlipSet
	err := t.readRowFlipsInto(&flips, bank, phys, victim, pat)
	return flips, err
}

// readRowFlipsInto is readRowFlips reusing the caller's flip buffer
// (truncated, then appended to) — the allocation-free variant for hot
// measurement loops.
func (t *Tester) readRowFlipsInto(flips *FlipSet, bank, phys, victim int, pat dram.PatternKind) error {
	t.ensureScratch()
	g := t.b.Geometry()
	tm := t.b.Timing()
	bld := t.bld.Reset()
	bld.Act(bank, t.logical(phys)).Wait(tm.TRCD)
	bld.RdRow(bank, g.ColumnsPerRow, tm.TCCD)
	bld.Wait(tm.TRAS).Pre(bank).Wait(tm.TRP)
	flips.Bits = flips.Bits[:0]
	if err := t.b.Exec.RunInto(bld.View(), &t.res); err != nil {
		return err
	}
	dist := phys - victim
	random := pat == dram.PatRandom
	want := pat.FillWord(t.patternSeed, bank, phys, dist, 0)
	for col, got := range t.res.Reads {
		if random {
			want = pat.FillWord(t.patternSeed, bank, phys, dist, col)
		}
		diff := got ^ want
		for diff != 0 {
			flips.Bits = append(flips.Bits, col*64+bits.TrailingZeros64(diff))
			diff &= diff - 1
		}
	}
	return nil
}

// Hammer runs one complete double-sided RowHammer test: initialize
// data, hammer, read back the double-sided and single-sided victims.
func (t *Tester) Hammer(cfg HammerConfig) (HammerResult, error) {
	var out HammerResult
	err := t.HammerInto(cfg, &out)
	return out, err
}

// HammerInto is Hammer writing into a caller-owned result whose flip
// buffers are truncated and reused — the allocation-free variant for
// hot measurement loops. Results are bit-identical to Hammer.
func (t *Tester) HammerInto(cfg HammerConfig, out *HammerResult) error {
	out.Victim.Bits = out.Victim.Bits[:0]
	out.SingleLo.Bits = out.SingleLo.Bits[:0]
	out.SingleHi.Bits = out.SingleHi.Bits[:0]
	out.DurationP = 0
	if err := t.validateVictim(cfg.Bank, cfg.VictimPhys); err != nil {
		return err
	}
	if cfg.Hammers < 0 {
		return fmt.Errorf("rowhammer: negative hammer count")
	}
	t.ensureScratch()
	t.b.Model.SetSalt(cfg.Trial)
	defer t.b.Model.SetSalt(0)

	if err := t.writePattern(cfg.Bank, cfg.VictimPhys, cfg.Pattern); err != nil {
		return err
	}

	tm := t.b.Timing()
	aggOn := tm.TRAS
	if cfg.AggOnNs > 0 {
		aggOn = dram.PicosFromNs(cfg.AggOnNs)
	}
	aggOff := tm.TRP
	if cfg.AggOffNs > 0 {
		aggOff = dram.PicosFromNs(cfg.AggOffNs)
	}
	t.aggRows[0] = t.logical(cfg.VictimPhys - 1)
	t.aggRows[1] = t.logical(cfg.VictimPhys + 1)
	bld := t.bld.Reset()
	bld.HammerShared(cfg.Bank, t.aggRows[:], cfg.Hammers, aggOn, aggOff)
	start := t.b.Exec.Now()
	if err := t.b.Exec.RunInto(bld.View(), &t.res); err != nil {
		return err
	}

	out.DurationP = t.b.Exec.Now() - start
	if err := t.readRowFlipsInto(&out.Victim, cfg.Bank, cfg.VictimPhys, cfg.VictimPhys, cfg.Pattern); err != nil {
		return err
	}
	g := t.b.Geometry()
	if cfg.VictimPhys-2 >= 0 {
		if err := t.readRowFlipsInto(&out.SingleLo, cfg.Bank, cfg.VictimPhys-2, cfg.VictimPhys, cfg.Pattern); err != nil {
			return err
		}
	}
	if cfg.VictimPhys+2 < g.RowsPerBank {
		if err := t.readRowFlipsInto(&out.SingleHi, cfg.Bank, cfg.VictimPhys+2, cfg.VictimPhys, cfg.Pattern); err != nil {
			return err
		}
	}
	return nil
}

// WorstCasePattern finds the module's worst-case data pattern (WCDP):
// the Table 1 pattern maximizing bit flips on the sampled victim rows
// (§4.2).
func (t *Tester) WorstCasePattern(bank int, victims []int, hammers int64) (dram.PatternKind, error) {
	s, err := t.SurveyPatterns(context.Background(), bank, victims, hammers)
	if err != nil {
		return s.Best, err
	}
	return s.Best, nil
}

// declareTrialSalts announces the upcoming min-of-R trial batch
// (salts 1..reps) to the fault model so one candidate walk can
// evaluate all repetitions at once.
func (t *Tester) declareTrialSalts(reps int) {
	t.salts = t.salts[:0]
	for rep := 0; rep < reps; rep++ {
		t.salts = append(t.salts, uint64(rep)+1)
	}
	t.b.Model.SetTrialSalts(t.salts)
}

// BER measures the bit error rate of a victim row: the number of
// RowHammer bit flips at the given hammer count, using the worst case
// over the configured repetitions (the paper repeats five times).
func (t *Tester) BER(cfg HammerConfig, repetitions int) (HammerResult, error) {
	if repetitions < 1 {
		repetitions = 1
	}
	t.declareTrialSalts(repetitions)
	// worst and cur swap slice headers rather than copying, so each
	// repetition reuses whichever buffers the previous best released.
	var worst, cur HammerResult
	for rep := 0; rep < repetitions; rep++ {
		c := cfg
		c.Trial = uint64(rep) + 1
		if err := t.HammerInto(c, &cur); err != nil {
			return worst, err
		}
		if rep == 0 || cur.Victim.Count() > worst.Victim.Count() {
			worst, cur = cur, worst
		}
	}
	return worst, nil
}
